"""PARTIES (Chen et al., ASPLOS 2019) — the trial-and-error baseline.

PARTIES monitors each LC job's tail-latency *slack* and makes
incremental, one-resource-at-a-time adjustments through a per-job
finite state machine:

* an LC job violating its QoS is **upsized**: it receives one unit of
  the resource its FSM currently points at, taken from a BG job when
  possible, otherwise from the LC job with the most slack;
* when every LC job has comfortable slack, the slackest job is
  **downsized** by one unit, donated to the BG jobs; a downsize that
  causes a violation is reverted and that (job, resource) pair marked
  tight;
* if an adjustment does not improve the target job's slack, the FSM
  advances to the next resource — the mechanism that, as the CLITE
  paper shows (Fig. 9b), can cycle indefinitely without ever finding a
  jointly feasible partition, because no move explores two resources
  at once.

The implementation follows the CLITE paper's characterization of
PARTIES (Secs. 1-2, 5.1): simple, effective when coordinate descent
suffices, blind to resource equivalence, and best-effort toward BG
jobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.units import Fraction
from ..resources.allocation import Configuration
from ..resources.contracts import policy_contract
from ..server.node import LC_ROLE, Node, NodeBudget, Observation
from .base import Policy, PolicyResult, SearchRecorder

#: Slack above which PARTIES considers reclaiming resources for BG jobs.
DOWNSIZE_SLACK: Fraction = 0.30
#: Minimum slack improvement for an upsize to count as progress.
IMPROVEMENT_EPSILON: Fraction = 0.01


def _slack(observation: Observation, job_name: str) -> Fraction:
    """Relative latency slack ``(target - p95) / target`` (negative = violating)."""
    reading = observation.job(job_name)
    if reading.role != LC_ROLE:
        raise ValueError(f"{job_name} is not an LC job")
    return (reading.qos_target_ms - reading.p95_ms) / reading.qos_target_ms


class PartiesPolicy(Policy):
    """Coordinate-descent partitioning with per-job resource FSMs.

    Args:
        stall_limit: Consecutive no-op steps (all QoS met, nothing safe
            to downsize) after which PARTIES declares itself stable.
    """

    name = "PARTIES"

    def __init__(self, stall_limit: int = 3) -> None:
        if stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")
        self.stall_limit = stall_limit

    # ------------------------------------------------------------------
    # FSM helpers
    # ------------------------------------------------------------------
    def _advance(self, fsm: Dict[int, int], job: int, n_resources: int) -> None:
        fsm[job] = (fsm[job] + 1) % n_resources

    def _find_donor(
        self,
        node: Node,
        config: Configuration,
        resource: int,
        needy: int,
        observation: Observation,
    ) -> Optional[int]:
        """Who gives up one unit of ``resource`` for job ``needy``.

        BG jobs donate first (largest holding first); failing that, the
        LC job with the most slack that still has spare units.
        """
        bg_donors = [
            j
            for j in node.bg_indices
            if j != needy and config.get(j, resource) > 1
        ]
        if bg_donors:
            return max(bg_donors, key=lambda j: config.get(j, resource))
        lc_donors = [
            j
            for j in node.lc_indices
            if j != needy and config.get(j, resource) > 1
        ]
        if not lc_donors:
            return None
        return max(lc_donors, key=lambda j: _slack(observation, node.jobs[j].name))

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        recorder = SearchRecorder(node, budget)
        config = node.space.equal_partition()
        entry = recorder.observe(config)

        n_res = node.space.n_resources
        fsm: Dict[int, int] = {j: 0 for j in range(node.n_jobs)}
        tight: Set[Tuple[int, int]] = set()  # (job, resource) unsafe to shrink
        stalls = 0
        converged = False

        while not recorder.exhausted:
            observation = entry.observation
            lc_slacks = {
                j: _slack(observation, node.jobs[j].name)
                for j in node.lc_indices
            }
            violators = [j for j, s in lc_slacks.items() if s < 0]

            if violators:
                moved = self._upsize_step(
                    node, recorder, config, fsm, violators, lc_slacks, observation
                )
            else:
                moved = self._downsize_step(
                    node, recorder, config, fsm, tight, lc_slacks
                )
                if moved is None:
                    stalls += 1
                    if stalls >= self.stall_limit:
                        converged = True
                        break
                    # Re-observe the stable partition (monitoring window).
                    if recorder.exhausted:
                        break
                    entry = recorder.observe(config)
                    continue
            stalls = 0
            if moved is None:
                break  # nothing can move at all
            config, entry = moved

        return recorder.result(self.name, converged)

    def _upsize_step(
        self,
        node: Node,
        recorder: SearchRecorder,
        config: Configuration,
        fsm: Dict[int, int],
        violators: List[int],
        lc_slacks: Dict[int, float],
        observation: Observation,
    ) -> Optional[Tuple[Configuration, object]]:
        """Grow the most-violating job by one unit of its FSM resource."""
        needy = min(violators, key=lambda j: lc_slacks[j])
        for _ in range(node.space.n_resources):
            resource = fsm[needy]
            donor = self._find_donor(node, config, resource, needy, observation)
            if donor is None:
                self._advance(fsm, needy, node.space.n_resources)
                continue
            new_config = config.with_transfer(resource, donor, needy)
            entry = recorder.observe(new_config)
            new_slack = _slack(entry.observation, node.jobs[needy].name)
            if new_slack < lc_slacks[needy] + IMPROVEMENT_EPSILON:
                # No progress on this resource; try another next time.
                self._advance(fsm, needy, node.space.n_resources)
            return new_config, entry
        return None

    def _downsize_step(
        self,
        node: Node,
        recorder: SearchRecorder,
        config: Configuration,
        fsm: Dict[int, int],
        tight: Set[Tuple[int, int]],
        lc_slacks: Dict[int, float],
    ) -> Optional[Tuple[Configuration, object]]:
        """Reclaim one unit from the slackest LC job for the BG jobs.

        Faithfully myopic: only the slackest job's *current FSM
        resource* is tried each window — PARTIES does not reason about
        which resource the BG jobs would benefit from.  On failure the
        FSM advances so a different resource is tried next window.
        """
        if not node.bg_indices:
            return None
        candidates = [j for j, s in lc_slacks.items() if s > DOWNSIZE_SLACK]
        if not candidates:
            return None
        donor = max(candidates, key=lambda j: lc_slacks[j])
        if all(
            (donor, r) in tight or config.get(donor, r) <= 1
            for r in range(node.space.n_resources)
        ):
            return None  # nothing left to reclaim from the slackest job
        resource = fsm[donor]
        if (donor, resource) in tight or config.get(donor, resource) <= 1:
            self._advance(fsm, donor, node.space.n_resources)
            resource = fsm[donor]
            if (donor, resource) in tight or config.get(donor, resource) <= 1:
                return None  # try again next window after the FSM moved
        receiver = min(node.bg_indices, key=lambda j: config.get(j, resource))
        new_config = config.with_transfer(resource, donor, receiver)
        entry = recorder.observe(new_config)
        if _slack(entry.observation, node.jobs[donor].name) < 0:
            tight.add((donor, resource))
            self._advance(fsm, donor, node.space.n_resources)
            if recorder.exhausted:
                return new_config, entry
            reverted = recorder.observe(config)
            return config, reverted
        return new_config, entry
