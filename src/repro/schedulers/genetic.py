"""GENETIC — genetic-algorithm-inspired search (Sec. 5.1).

Starts from a randomly sampled population, repeatedly selects the two
configurations with the highest objective score, recombines their
resource allocations ("cross-over"), perturbs the children with
single-unit transfers ("mutation"), and evaluates the offspring — until
a preset number of configurations has been sampled, after which the
best-scoring configuration wins.  Evolutionary recombination lets it
occasionally beat PARTIES (Sec. 5.2), but the preset budget makes it
one of the most expensive schemes in Fig. 15(a).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..resources.allocation import Configuration, _round_column
from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from .base import Policy, PolicyResult, SearchRecorder, TraceEntry

#: Default preset sample count (set above CLITE's average, per Sec. 5.1).
DEFAULT_PRESET_SAMPLES = 80


class GeneticPolicy(Policy):
    """Crossover-and-mutation search over resource partitions.

    Args:
        preset_samples: Total configurations to evaluate.
        population: Size of the random founding population.
        offspring_per_generation: Children produced from each elite pair.
        mutation_prob: Probability that a child receives one random
            single-unit transfer.
        seed: Random seed.
    """

    name = "GENETIC"

    def __init__(
        self,
        preset_samples: int = DEFAULT_PRESET_SAMPLES,
        population: int = 8,
        offspring_per_generation: int = 6,
        mutation_prob: float = 0.7,
        seed: Optional[int] = None,
    ) -> None:
        if preset_samples < 2:
            raise ValueError("preset_samples must be >= 2")
        if population < 2:
            raise ValueError("population must be >= 2")
        if offspring_per_generation < 1:
            raise ValueError("offspring_per_generation must be >= 1")
        if not 0 <= mutation_prob <= 1:
            raise ValueError("mutation_prob must be in [0, 1]")
        self.preset_samples = preset_samples
        self.population = population
        self.offspring_per_generation = offspring_per_generation
        self.mutation_prob = mutation_prob
        self.seed = seed

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------
    def _crossover(
        self,
        node: Node,
        a: Configuration,
        b: Configuration,
        rng: np.random.Generator,
    ) -> Configuration:
        """Mix two parents gene-by-gene, then repair the column sums.

        Each (job, resource) cell is inherited from a random parent; the
        result usually violates Eq. 6, so every resource column is
        re-normalized with the same largest-remainder rounding the rest
        of the library uses.
        """
        mat_a, mat_b = a.as_array(), b.as_array()
        pick = rng.integers(0, 2, size=mat_a.shape).astype(bool)
        child = np.where(pick, mat_a, mat_b)
        repaired = np.empty_like(child)
        for r, resource in enumerate(node.spec.resources):
            repaired[:, r] = _round_column(
                child[:, r].astype(float), resource.units
            )
        return Configuration.from_matrix(repaired)

    def _mutate(
        self, node: Node, config: Configuration, rng: np.random.Generator
    ) -> Configuration:
        """One random single-unit transfer between two random jobs."""
        for _ in range(20):
            resource = int(rng.integers(node.space.n_resources))
            donor = int(rng.integers(node.n_jobs))
            receiver = int(rng.integers(node.n_jobs))
            if donor == receiver or config.get(donor, resource) <= 1:
                continue
            return config.with_transfer(resource, donor, receiver)
        return config

    # ------------------------------------------------------------------
    # The search loop
    # ------------------------------------------------------------------
    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        rng = np.random.default_rng(self.seed)
        recorder = SearchRecorder(node, budget)
        target = min(self.preset_samples, budget.max_samples)
        seen: Set[Tuple[int, ...]] = set()

        pool: List[TraceEntry] = []
        founders = min(self.population, target)
        for _ in range(founders):
            config = node.space.random(rng)
            seen.add(config.flat())
            pool.append(recorder.observe(config))

        while len(recorder.trace) < target:
            elite = sorted(pool, key=lambda e: e.score, reverse=True)[:2]
            for _ in range(self.offspring_per_generation):
                if len(recorder.trace) >= target:
                    break
                child = self._crossover(node, elite[0].config, elite[1].config, rng)
                if rng.random() < self.mutation_prob:
                    child = self._mutate(node, child, rng)
                if child.flat() in seen:
                    child = self._mutate(node, child, rng)
                seen.add(child.flat())
                pool.append(recorder.observe(child))

        return recorder.result(self.name, converged=True)
