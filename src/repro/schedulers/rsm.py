"""RSM — Response Surface Methodology baseline (Sec. 5.2).

Implements both classical second-order designs the paper sized:

* **Box-Behnken** — all ``(±1, ±1)`` combinations for every factor
  pair with the remaining factors at mid-level, plus center points:
  ``2k(k-1) + c`` runs (the paper quotes 130 for its 9-factor case);
* **Central Composite** — a fractional two-level core, ``2k`` axial
  points, and center points (the paper quotes 160 runs).

Either design is observed, a thin-plate-spline response surface is fit,
and its predicted optimum is evaluated.  As Sec. 5.2 reports, these
static designs need 2-8x CLITE's samples and the fitted surface "did
not work as the job mix was changed" — no per-mix adaptivity.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from .base import Policy, PolicyResult, SearchRecorder
from ._dse import evaluate_design, fit_and_probe_surface
from .ffd import two_level_design

BOX_BEHNKEN = "box-behnken"
CENTRAL_COMPOSITE = "central-composite"


def box_behnken_design(factors: int) -> np.ndarray:
    """Box-Behnken design in ±1 coding (no center points), (2k(k-1), k)."""
    if factors < 2:
        raise ValueError("Box-Behnken needs at least two factors")
    rows = []
    for i in range(factors):
        for j in range(i + 1, factors):
            for a in (-1.0, 1.0):
                for b in (-1.0, 1.0):
                    row = np.zeros(factors)
                    row[i], row[j] = a, b
                    rows.append(row)
    return np.array(rows)


def central_composite_design(factors: int, alpha: float = 1.0) -> np.ndarray:
    """Central Composite design in ±1 coding (no center points).

    Uses the folded-over Hadamard screening design as the factorial
    core plus ``2k`` axial points at ``±alpha``.
    """
    core = two_level_design(factors)
    axial = []
    for i in range(factors):
        for sign in (-alpha, alpha):
            row = np.zeros(factors)
            row[i] = sign
            axial.append(row)
    return np.vstack([core, np.array(axial)])


class RSMPolicy(Policy):
    """Second-order designed experiment + RBF surface interpolation.

    Args:
        design: ``"box-behnken"`` (default) or ``"central-composite"``.
        low: Cube coordinate the −1 level maps to.
        high: Cube coordinate the +1 level maps to.
        center_points: Replicated mid-level runs appended to the design.
        candidate_pool: Lattice points scored by the fitted surface.
        seed: Random seed (pool sampling only).
    """

    name = "RSM"

    def __init__(
        self,
        design: str = BOX_BEHNKEN,
        low: float = 0.1,
        high: float = 0.9,
        center_points: int = 6,
        candidate_pool: int = 2000,
        seed: Optional[int] = None,
    ) -> None:
        if design not in (BOX_BEHNKEN, CENTRAL_COMPOSITE):
            raise ValueError(
                f"design must be {BOX_BEHNKEN!r} or {CENTRAL_COMPOSITE!r}"
            )
        if not 0 <= low < high <= 1:
            raise ValueError("need 0 <= low < high <= 1")
        if center_points < 0:
            raise ValueError("center_points must be >= 0")
        self.design = design
        self.low = low
        self.high = high
        self.center_points = center_points
        self.candidate_pool = candidate_pool
        self.seed = seed

    def design_rows(self, n_dims: int) -> List[np.ndarray]:
        """The full design in cube coordinates (levels already mapped)."""
        if self.design == BOX_BEHNKEN:
            coded = box_behnken_design(n_dims)
        else:
            coded = central_composite_design(n_dims)
        mid = (self.low + self.high) / 2.0
        half_span = (self.high - self.low) / 2.0
        rows = [mid + row * half_span for row in coded]
        rows.extend(np.full(n_dims, mid) for _ in range(self.center_points))
        return rows

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        rng = np.random.default_rng(self.seed)
        recorder = SearchRecorder(node, budget)
        cubes = evaluate_design(
            recorder, node.space, self.design_rows(node.space.n_dims)
        )
        fit_and_probe_surface(
            recorder, node, cubes, self.candidate_pool, rng
        )
        return recorder.result(self.name, converged=True)
