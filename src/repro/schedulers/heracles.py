"""Heracles (Lo et al., ISCA 2015) — the single-LC-job controller.

Heracles guards the QoS of exactly **one** latency-critical job — the
first LC job on the node — by growing its allocation whenever it
violates and returning spare resources to the best-effort jobs when it
has comfortable slack.  Every other job, including any additional LC
jobs, is treated as best effort: this is precisely why Heracles cannot
co-locate multiple LC jobs in the paper's Fig. 7 ("Heracles is not
designed to enable co-location of multiple LC jobs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..resources.allocation import Configuration
from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from .base import Policy, PolicyResult, SearchRecorder
from .parties import DOWNSIZE_SLACK, _slack


@dataclass(frozen=True)
class _Move:
    """One Heracles adjustment: the new partition and FSM bookkeeping."""

    config: Configuration
    cursor: int
    shrunk_resource: Optional[int] = None


class HeraclesPolicy(Policy):
    """Grow-the-primary / shrink-on-slack control for the first LC job.

    A resource whose give-back broke the primary's QoS is marked
    *tight* and never shrunk again — the hysteresis that keeps the
    controller from cycling between a violating and an over-provisioned
    partition.

    Args:
        stall_limit: Consecutive no-op windows after which the
            controller declares the partition stable.
    """

    name = "Heracles"

    def __init__(self, stall_limit: int = 3) -> None:
        if stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")
        self.stall_limit = stall_limit

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        if not node.lc_indices:
            raise ValueError("Heracles needs at least one LC job")
        primary = node.lc_indices[0]
        primary_name = node.jobs[primary].name

        recorder = SearchRecorder(node, budget)
        config = node.space.equal_partition()
        entry = recorder.observe(config)
        cursor = 0
        stalls = 0
        converged = False
        tight: Set[int] = set()  # resources whose shrink broke QoS
        last_shrink: Optional[int] = None

        while not recorder.exhausted:
            slack = _slack(entry.observation, primary_name)
            if slack < 0:
                if last_shrink is not None:
                    # The shrink we just tried broke the primary's QoS:
                    # remember it and grow that resource back first.
                    tight.add(last_shrink)
                    cursor = last_shrink
                move = self._grow_primary(node, config, primary, cursor)
            elif slack > DOWNSIZE_SLACK:
                move = self._shrink_primary(node, config, primary, cursor, tight)
            else:
                move = None
            last_shrink = move.shrunk_resource if move is not None else None

            if move is None:
                stalls += 1
                if stalls >= self.stall_limit:
                    converged = True
                    break
                entry = recorder.observe(config)
                continue
            stalls = 0
            config, cursor = move.config, move.cursor
            entry = recorder.observe(config)

        # Heracles is a feedback controller, not a search: the partition
        # left enacted is its terminal state, not the best-scoring
        # sample along the way.
        return recorder.result(self.name, converged, final=entry)

    def _grow_primary(
        self, node: Node, config: Configuration, primary: int, cursor: int
    ) -> Optional[_Move]:
        """Take one unit of the cursor resource from the richest other job."""
        n_res = node.space.n_resources
        for offset in range(n_res):
            resource = (cursor + offset) % n_res
            donors = [
                j
                for j in range(node.n_jobs)
                if j != primary and config.get(j, resource) > 1
            ]
            if not donors:
                continue
            donor = max(donors, key=lambda j: config.get(j, resource))
            return _Move(
                config=config.with_transfer(resource, donor, primary),
                cursor=(resource + 1) % n_res,
            )
        return None

    def _shrink_primary(
        self,
        node: Node,
        config: Configuration,
        primary: int,
        cursor: int,
        tight: Set[int],
    ) -> Optional[_Move]:
        """Return one unit of a non-tight resource to the poorest other job."""
        n_res = node.space.n_resources
        for offset in range(n_res):
            resource = (cursor + offset) % n_res
            if resource in tight or config.get(primary, resource) <= 1:
                continue
            others = [j for j in range(node.n_jobs) if j != primary]
            receiver = min(others, key=lambda j: config.get(j, resource))
            return _Move(
                config=config.with_transfer(resource, primary, receiver),
                cursor=(resource + 1) % n_res,
                shrunk_resource=resource,
            )
        return None
