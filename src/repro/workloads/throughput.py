"""Throughput model for background (batch) jobs.

A BG job's instantaneous throughput is its peak rate scaled by (a) a
sub-linear parallel-speedup curve in its core share, (b) its sensitivity
profile over the remaining resources, and (c) degradation from co-runner
pressure on unpartitioned hardware.  The paper's metrics only ever use
throughput *normalized to isolated performance* (``Colo-Perf / Iso-Perf``
in Eq. 3), which this module provides directly.
"""

from __future__ import annotations

from typing import Mapping

from .base import BGWorkload
from ..resources.spec import CORES


def throughput(
    workload: BGWorkload,
    shares: Mapping[str, float],
    contention: float = 0.0,
) -> float:
    """Absolute throughput (work units/second) under the given shares.

    ``shares`` must include the core share under the ``"cores"`` key;
    missing non-core resources count as fully allocated.
    """
    core_share = shares.get(CORES, 1.0)
    degradation = 1.0 / (1.0 + workload.contention_sensitivity * max(contention, 0.0))
    return (
        workload.base_throughput
        * workload.core_curve.contribution(core_share)
        * workload.non_core_multiplier(shares)
        * degradation
    )


def isolated_throughput(workload: BGWorkload) -> float:
    """Throughput with every resource fully allocated and no co-runners.

    This is the ``Iso-Perf`` denominator of Eq. 3, which CLITE samples
    during its initialization phase (the per-job maximum-allocation
    bootstrap points).
    """
    return throughput(workload, {}, contention=0.0)


def normalized_throughput(
    workload: BGWorkload,
    shares: Mapping[str, float],
    contention: float = 0.0,
) -> float:
    """``Colo-Perf / Iso-Perf`` in ``(0, 1]`` — the paper's BG metric."""
    return throughput(workload, shares, contention) / isolated_throughput(workload)
