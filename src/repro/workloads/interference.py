"""Contention on unpartitioned shared hardware.

Even with cores, LLC ways, and memory bandwidth partitioned, co-located
jobs still interfere through hardware no isolation tool covers:
prefetchers, the ring interconnect, SMT port sharing, the memory
controller's row buffers.  The paper relies on partitioning capturing
*most* of the interference; this module supplies the mild residual
coupling that keeps observations from being perfectly separable, which
is part of what makes the optimization problem noisy and non-convex.

Each job exerts ``pressure * activity`` on the shared substrate, where
*activity* is the job's load fraction (LC) or its core share (BG).  A
job experiences the sum of every co-runner's pressure, scaled by its own
``contention_sensitivity`` inside the latency/throughput models.
"""

from __future__ import annotations

from typing import Sequence

from .base import Workload


def exerted_pressure(workload: Workload, activity: float) -> float:
    """Pressure one job places on unpartitioned hardware.

    Args:
        workload: The job.
        activity: How busy the job is, in [0, 1] (load fraction for LC
            jobs, core share for BG jobs).
    """
    return workload.pressure * min(max(activity, 0.0), 1.0)


def co_runner_pressure(
    pressures: Sequence[float],
    victim_index: int,
) -> float:
    """Total pressure felt by ``victim_index`` from every other job."""
    if not 0 <= victim_index < len(pressures):
        raise IndexError(f"victim index {victim_index} out of range")
    return sum(p for i, p in enumerate(pressures) if i != victim_index)
