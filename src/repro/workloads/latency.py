"""Tail-latency model for latency-critical jobs.

An LC job is modelled as a two-stage tandem queue:

* a **serial stage** — an M/M/1 queue representing the job's own
  software bottleneck (a global lock, the network stack, a GC thread).
  A request spends ``serial_fraction`` of its work here regardless of
  how many cores the job holds.  This stage is what saturates first in
  real Tailbench services and is why their maximum load sits far below
  ``cores x per-core-rate`` — and, crucially, it is *per job*, so two
  jobs at 100% of their own maximum load can still share one machine.
* a **parallel stage** — an M/M/c queue over the job's ``c`` allocated
  cores, handling the remaining ``1 - serial_fraction`` of the work.

Both stages' service rates scale with the job's share of every non-core
resource (LLC ways, memory bandwidth, ...) through its sensitivity
profile, so cache and bandwidth trade off against cores: that is the
"resource equivalence class" property of Sec. 2 / Fig. 1 of the paper.
The 95th-percentile sojourn time diverges as either stage approaches
saturation, giving the QPS-vs-latency knees of Fig. 6.
"""

from __future__ import annotations

import math
from typing import Mapping, Tuple

from ..core.units import Fraction, Millis, Rate, Seconds

from .base import LCWorkload

#: Latency reported when a queue is saturated (arrival rate >= capacity).
SATURATED_LATENCY_MS: Millis = float("inf")


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arriving query waits, for an M/M/c queue.

    Args:
        servers: Number of servers ``c`` (cores), >= 1.
        offered_load: ``a = arrival_rate / service_rate`` in Erlangs;
            values at or above ``servers`` return 1.0 (saturated).

    Uses the numerically stable Erlang-B recurrence
    ``B(k) = a*B(k-1) / (k + a*B(k-1))`` and the identity
    ``C = B / (1 - rho * (1 - B))``.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    rho = offered_load / servers
    if rho >= 1.0:
        return 1.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


def mm1_sojourn_quantile(
    arrival_rate: Rate, service_rate: Rate, percentile: Fraction = 0.95
) -> Seconds:
    """Quantile of M/M/1 response time (exactly Exp(mu - lambda)), seconds."""
    if not 0 < percentile < 1:
        raise ValueError(f"percentile must be in (0, 1), got {percentile}")
    if service_rate <= 0 or arrival_rate >= service_rate:
        return float("inf")
    return -math.log(1.0 - percentile) / (service_rate - arrival_rate)


def mm1_mean_sojourn(arrival_rate: Rate, service_rate: Rate) -> Seconds:
    """Mean M/M/1 response time ``1 / (mu - lambda)``, seconds."""
    if service_rate <= 0 or arrival_rate >= service_rate:
        return float("inf")
    return 1.0 / (service_rate - arrival_rate)


def mmc_sojourn_quantile(
    arrival_rate: Rate,
    service_rate: Rate,
    servers: int,
    percentile: Fraction = 0.95,
) -> Seconds:
    """The ``percentile`` quantile of M/M/c response (sojourn) time, seconds.

    The sojourn time is ``S + W`` where ``S ~ Exp(mu)`` is service and the
    wait ``W`` is zero with probability ``1 - Pw`` and ``Exp(c*mu - lambda)``
    with probability ``Pw`` (the Erlang-C waiting probability).  The CDF
    of that mixture has a closed form, which we invert by bisection.

    Returns ``inf`` if the queue is saturated (``lambda >= c*mu``).
    """
    if not 0 < percentile < 1:
        raise ValueError(f"percentile must be in (0, 1), got {percentile}")
    if service_rate <= 0:
        return float("inf")
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
    mu = service_rate
    lam = arrival_rate
    c = servers
    if lam >= c * mu:
        return float("inf")
    if lam == 0:
        return -math.log(1.0 - percentile) / mu

    p_wait = erlang_c(c, lam / mu)
    nu = c * mu - lam  # conditional wait is Exp(nu)

    def cdf(t: float) -> float:
        f_service = 1.0 - math.exp(-mu * t)
        if abs(nu - mu) < 1e-12 * mu:
            # Exp(mu) + Exp(mu) is Erlang-2.
            f_sum = 1.0 - math.exp(-mu * t) * (1.0 + mu * t)
        else:
            f_sum = 1.0 - (
                nu * math.exp(-mu * t) - mu * math.exp(-nu * t)
            ) / (nu - mu)
        return (1.0 - p_wait) * f_service + p_wait * f_sum

    lo, hi = 0.0, 1.0 / mu
    while cdf(hi) < percentile:
        hi *= 2.0
        if hi > 1e9:  # pathological; treat as saturated
            return float("inf")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < percentile:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def mmc_mean_sojourn(
    arrival_rate: Rate, service_rate: Rate, servers: int
) -> Seconds:
    """Mean M/M/c response time ``1/mu + Pw / (c*mu - lambda)``, seconds."""
    if service_rate <= 0 or arrival_rate >= servers * service_rate:
        return float("inf")
    p_wait = erlang_c(servers, arrival_rate / service_rate)
    return 1.0 / service_rate + p_wait / (servers * service_rate - arrival_rate)


def effective_service_rate(
    workload: LCWorkload,
    shares: Mapping[str, float],
    contention: float = 0.0,
) -> Rate:
    """Unit-work completion rate under the given non-core shares.

    This is the rate at which one request's *total* work would complete
    on ideal hardware: ``base_service_rate`` scaled by the workload's
    non-core sensitivity profile and degraded by co-runner ``contention``
    on unpartitioned hardware (:mod:`repro.workloads.interference`).
    The tandem stages split this rate via ``serial_fraction``.
    """
    degradation = 1.0 / (1.0 + workload.contention_sensitivity * max(contention, 0.0))
    return workload.base_service_rate * workload.non_core_multiplier(shares) * degradation


def stage_rates(
    workload: LCWorkload,
    shares: Mapping[str, float],
    contention: float = 0.0,
) -> Tuple[Rate, Rate]:
    """Service rates ``(mu_serial, mu_parallel)`` of the tandem stages.

    A request whose total work completes at rate ``mu`` spends
    ``serial_fraction`` of it in the single-threaded stage (rate
    ``mu / sigma``) and the rest in the parallel stage (per-core rate
    ``mu / (1 - sigma)``).  A zero ``serial_fraction`` yields an
    infinite serial rate, i.e. no serial stage.
    """
    mu = effective_service_rate(workload, shares, contention)
    sigma = workload.serial_fraction
    mu_serial = math.inf if sigma == 0 else mu / sigma
    mu_parallel = mu / (1.0 - sigma)
    return mu_serial, mu_parallel


def capacity_qps(
    workload: LCWorkload,
    cores: int,
    shares: Mapping[str, float],
    contention: float = 0.0,
) -> Rate:
    """Saturation throughput: the slower of the two stages' capacities.

    ``min(mu/sigma, c * mu/(1-sigma))`` — for enough cores the job's own
    serial bottleneck caps throughput, which is why maximum load barely
    grows past a handful of cores (and why co-locating several LC jobs
    at high load is possible at all).
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    mu_serial, mu_parallel = stage_rates(workload, shares, contention)
    return min(mu_serial, cores * mu_parallel)


def p95_latency_ms(
    workload: LCWorkload,
    qps: Rate,
    cores: int,
    shares: Mapping[str, float],
    contention: float = 0.0,
    percentile: Fraction = 0.95,
) -> Millis:
    """95th-percentile latency (ms) of ``workload`` at ``qps`` load.

    The tandem-queue tail is approximated as the larger stage's quantile
    plus the other stage's mean — exact for a single dominant stage,
    slightly conservative in between, and monotone in both utilizations.

    Args:
        workload: The LC job.
        qps: Absolute arrival rate in queries/second.
        cores: Cores allocated to the job (M/M/c servers).
        shares: Fractional shares of non-core resources.
        contention: Co-runner pressure on unpartitioned resources.
        percentile: Tail percentile (default 0.95, as in the paper).
    """
    if qps < 0:
        raise ValueError(f"qps must be >= 0, got {qps}")
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    mu_serial, mu_parallel = stage_rates(workload, shares, contention)

    q_parallel = mmc_sojourn_quantile(qps, mu_parallel, cores, percentile)
    if math.isinf(mu_serial):
        total_s = q_parallel
    else:
        q_serial = mm1_sojourn_quantile(qps, mu_serial, percentile)
        if math.isinf(q_serial) or math.isinf(q_parallel):
            return SATURATED_LATENCY_MS
        m_serial = mm1_mean_sojourn(qps, mu_serial)
        m_parallel = mmc_mean_sojourn(qps, mu_parallel, cores)
        total_s = max(q_serial + m_parallel, q_parallel + m_serial)
    if math.isinf(total_s):
        return SATURATED_LATENCY_MS
    return total_s * 1000.0
