"""Synthetic analogues of the PARSEC background workloads.

The six throughput-oriented BG workloads of Table 3.  Core-scaling
curves and resource sensitivities follow the well-characterized PARSEC
behaviour the paper leans on:

* **blackscholes (BS)** — embarrassingly parallel option pricing;
  near-linear core scaling, almost no cache/bandwidth sensitivity.
* **canneal (CN)** — cache-aware simulated annealing; memory-latency
  bound, strongly LLC-sensitive, weak core scaling.
* **fluidanimate (FA)** — fluid dynamics; scales well with cores and is
  bandwidth-hungry.
* **freqmine (FM)** — frequent itemset mining; large working set, LLC
  sensitive.
* **streamcluster (SC)** — online stream clustering; the classic
  streaming kernel, dominated by memory bandwidth with a significant
  LLC component (Fig. 9a shows CLITE handing it LLC ways).
* **swaptions (SW)** — Monte-Carlo swaption pricing; pure compute.
"""

from __future__ import annotations

from typing import Dict

from .base import BGWorkload, ResourceProfile, SensitivityCurve
from ..resources.spec import LLC_WAYS, MEMORY_BANDWIDTH, MEMORY_CAPACITY

BG_NAMES = (
    "blackscholes",
    "canneal",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
)

#: Table 3 acronyms, used by the Fig. 14 bench and reports.
BG_ACRONYMS = {
    "blackscholes": "BS",
    "canneal": "CN",
    "fluidanimate": "FA",
    "freqmine": "FM",
    "streamcluster": "SC",
    "swaptions": "SW",
}


def _blackscholes() -> BGWorkload:
    return BGWorkload(
        name="blackscholes",
        description="Option pricing with the Black-Scholes PDE (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.1, shape=6.0),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.2, shape=5.0),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=0.5, floor=0.0),
        pressure=0.15,
        contention_sensitivity=0.05,
        base_throughput=100.0,
    )


def _canneal() -> BGWorkload:
    return BGWorkload(
        name="canneal",
        description="Cache-aware simulated annealing for chip design (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.1, shape=2.0, floor=0.20),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.7, shape=3.0, floor=0.25),
                MEMORY_CAPACITY: SensitivityCurve(weight=0.5, shape=3.0, floor=0.30),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=3.0, floor=0.0),
        pressure=0.35,
        contention_sensitivity=0.12,
        base_throughput=100.0,
    )


def _fluidanimate() -> BGWorkload:
    return BGWorkload(
        name="fluidanimate",
        description="Fluid dynamics for animation (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.4, shape=4.0, floor=0.30),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.9, shape=2.5, floor=0.20),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=1.0, floor=0.0),
        pressure=0.30,
        contention_sensitivity=0.10,
        base_throughput=100.0,
    )


def _freqmine() -> BGWorkload:
    return BGWorkload(
        name="freqmine",
        description="Frequent itemset mining (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.1, shape=2.0, floor=0.20),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.5, shape=3.5, floor=0.30),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=1.5, floor=0.0),
        pressure=0.30,
        contention_sensitivity=0.10,
        base_throughput=100.0,
    )


def _streamcluster() -> BGWorkload:
    return BGWorkload(
        name="streamcluster",
        description="Online clustering of an input stream (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.9, shape=2.5, floor=0.20),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=1.3, shape=1.5, floor=0.15),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=1.5, floor=0.0),
        pressure=0.45,
        contention_sensitivity=0.12,
        base_throughput=100.0,
    )


def _swaptions() -> BGWorkload:
    return BGWorkload(
        name="swaptions",
        description="Monte-Carlo pricing of a swaption portfolio (PARSEC)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.1, shape=6.0),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.1, shape=6.0),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=0.6, floor=0.0),
        pressure=0.10,
        contention_sensitivity=0.05,
        base_throughput=100.0,
    )


_FACTORIES = {
    "blackscholes": _blackscholes,
    "canneal": _canneal,
    "fluidanimate": _fluidanimate,
    "freqmine": _freqmine,
    "streamcluster": _streamcluster,
    "swaptions": _swaptions,
}


def bg_workload(name: str) -> BGWorkload:
    """Build one PARSEC BG workload by name (acronyms also accepted)."""
    full = {v: k for k, v in BG_ACRONYMS.items()}.get(name.upper(), name)
    if full not in _FACTORIES:
        raise KeyError(f"unknown BG workload {name!r}; choose from {BG_NAMES}")
    return _FACTORIES[full]()


def parsec_catalog() -> Dict[str, BGWorkload]:
    """All six PARSEC BG workloads (Table 3), keyed by name."""
    return {name: _FACTORIES[name]() for name in BG_NAMES}
