"""Workload models: LC latency, BG throughput, catalogs, load generation."""

from .base import (
    BGWorkload,
    LCWorkload,
    ResourceProfile,
    SensitivityCurve,
    Workload,
)
from .des import SimulationResult, simulate_mmc, simulate_tandem
from .interference import co_runner_pressure, exerted_pressure
from .latency import (
    SATURATED_LATENCY_MS,
    capacity_qps,
    effective_service_rate,
    erlang_c,
    mm1_mean_sojourn,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_sojourn_quantile,
    p95_latency_ms,
    stage_rates,
)
from .loadgen import (
    LoadPhase,
    LoadSchedule,
    LoadSweep,
    calibrate,
    find_knee,
    isolated_shares,
    sweep_load,
)
from .parsec import BG_ACRONYMS, BG_NAMES, bg_workload, parsec_catalog
from .tailbench import LC_NAMES, lc_workload, tailbench_catalog
from .throughput import isolated_throughput, normalized_throughput, throughput

__all__ = [
    "BGWorkload",
    "BG_ACRONYMS",
    "BG_NAMES",
    "LCWorkload",
    "LC_NAMES",
    "LoadPhase",
    "LoadSchedule",
    "LoadSweep",
    "ResourceProfile",
    "SATURATED_LATENCY_MS",
    "SensitivityCurve",
    "SimulationResult",
    "Workload",
    "bg_workload",
    "calibrate",
    "capacity_qps",
    "co_runner_pressure",
    "effective_service_rate",
    "erlang_c",
    "exerted_pressure",
    "find_knee",
    "isolated_shares",
    "isolated_throughput",
    "lc_workload",
    "mm1_mean_sojourn",
    "mm1_sojourn_quantile",
    "mmc_mean_sojourn",
    "mmc_sojourn_quantile",
    "normalized_throughput",
    "stage_rates",
    "p95_latency_ms",
    "parsec_catalog",
    "simulate_mmc",
    "simulate_tandem",
    "sweep_load",
    "tailbench_catalog",
    "throughput",
]
