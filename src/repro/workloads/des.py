"""Discrete-event simulation of the queueing models (validation layer).

The latency substrate rests on closed-form M/M/1 and M/M/c results; this
module provides an independent check: a small event-driven simulator
that generates Poisson arrivals, exponential service, FCFS queueing over
``c`` servers, and (for the LC model) the two-stage serial-then-parallel
tandem.  The test suite compares its empirical sojourn percentiles with
the analytic formulas in :mod:`repro.workloads.latency`, so a bug in
either implementation shows up as a disagreement.

Not used on any hot path — the controllers always query the analytic
model; this exists so the physics are *verified*, not just asserted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.units import Fraction, Rate, Seconds


@dataclass(frozen=True)
class SimulationResult:
    """Empirical sojourn-time statistics from one simulation run."""

    sojourn_times_s: np.ndarray
    utilization: Fraction

    def quantile(self, percentile: Fraction = 0.95) -> Seconds:
        if not 0 < percentile < 1:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        return float(np.quantile(self.sojourn_times_s, percentile))

    @property
    def mean(self) -> Seconds:
        return float(self.sojourn_times_s.mean())


def simulate_mmc(
    arrival_rate: Rate,
    service_rate: Rate,
    servers: int,
    n_customers: int = 50_000,
    warmup: int = 2_000,
    seed: Optional[int] = 0,
) -> SimulationResult:
    """Simulate an FCFS M/M/c queue and collect sojourn times.

    Args:
        arrival_rate: Poisson arrival intensity (1/s).
        service_rate: Per-server exponential service rate (1/s).
        servers: Number of parallel servers, >= 1.
        n_customers: Customers to simulate (after warmup discard).
        warmup: Leading customers dropped to wash out the empty start.
        seed: RNG seed.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if arrival_rate >= servers * service_rate:
        raise ValueError("simulating an unstable queue never converges")
    if n_customers <= warmup:
        raise ValueError("need more customers than warmup")

    rng = np.random.default_rng(seed)
    total = n_customers + warmup
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, total))
    services = rng.exponential(1.0 / service_rate, total)

    # c servers as a min-heap of next-free times.
    free_at: List[float] = [0.0] * servers
    heapq.heapify(free_at)
    sojourn = np.empty(total)
    busy_time = 0.0
    for i in range(total):
        start = max(arrivals[i], free_at[0])
        finish = start + services[i]
        heapq.heapreplace(free_at, finish)
        sojourn[i] = finish - arrivals[i]
        busy_time += services[i]
    horizon = max(max(free_at), arrivals[-1])
    return SimulationResult(
        sojourn_times_s=sojourn[warmup:],
        utilization=busy_time / (servers * horizon),
    )


def simulate_tandem(
    arrival_rate: Rate,
    serial_rate: Rate,
    parallel_rate: Rate,
    servers: int,
    n_customers: int = 50_000,
    warmup: int = 2_000,
    seed: Optional[int] = 0,
) -> SimulationResult:
    """Simulate the LC model's tandem: M/M/1 serial stage -> M/M/c stage.

    Departures of the serial stage feed the parallel stage (FCFS both);
    the recorded sojourn is end-to-end, matching what
    :func:`repro.workloads.latency.p95_latency_ms` approximates.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if min(arrival_rate, serial_rate, parallel_rate) <= 0:
        raise ValueError("rates must be positive")
    if arrival_rate >= serial_rate or arrival_rate >= servers * parallel_rate:
        raise ValueError("simulating an unstable tandem never converges")
    if n_customers <= warmup:
        raise ValueError("need more customers than warmup")

    rng = np.random.default_rng(seed)
    total = n_customers + warmup
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, total))
    serial_services = rng.exponential(1.0 / serial_rate, total)
    parallel_services = rng.exponential(1.0 / parallel_rate, total)

    serial_free = 0.0
    free_at: List[float] = [0.0] * servers
    heapq.heapify(free_at)
    sojourn = np.empty(total)
    for i in range(total):
        serial_start = max(arrivals[i], serial_free)
        serial_free = serial_start + serial_services[i]
        parallel_start = max(serial_free, free_at[0])
        finish = parallel_start + parallel_services[i]
        heapq.heapreplace(free_at, finish)
        sojourn[i] = finish - arrivals[i]
    return SimulationResult(
        sojourn_times_s=sojourn[warmup:],
        utilization=arrival_rate / serial_rate,
    )
