"""Load generation, knee detection, and QoS-target calibration.

Reproduces the paper's Fig. 6 methodology: run each latency-critical
workload *in isolation* (maximum allocation of every resource), sweep the
offered load (queries per second), record the 95th-percentile latency,
and take the *knee* of the QPS-vs-latency curve as the QoS tail-latency
target; the QPS at the knee is the workload's 100% load.  This module
also provides piecewise-constant load schedules for the dynamic-load
experiments (Fig. 16).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .base import LCWorkload
from .latency import capacity_qps, p95_latency_ms
from ..core.units import Fraction, Millis, Rate, Seconds
from ..resources.spec import CORES, ServerSpec


@dataclass(frozen=True)
class LoadSweep:
    """The outcome of an isolated QPS sweep for one LC workload."""

    workload: str
    qps: Tuple[Rate, ...]
    p95_ms: Tuple[Millis, ...]
    knee_index: int

    @property
    def knee_qps(self) -> Rate:
        return self.qps[self.knee_index]

    @property
    def knee_latency_ms(self) -> Millis:
        return self.p95_ms[self.knee_index]

    def rows(self) -> List[Tuple[Rate, Millis]]:
        """(qps, p95_ms) pairs, e.g. for printing the Fig. 6 series."""
        return list(zip(self.qps, self.p95_ms))


def find_knee(x: Sequence[float], y: Sequence[float]) -> int:
    """Index of the knee of a convex increasing curve.

    Normalizes both axes to [0, 1] and returns the point of maximum
    vertical distance *below* the chord from the first to the last point
    (the Kneedle construction for convex increasing data).  Points with
    non-finite ``y`` are ignored.

    Raises:
        ValueError: if fewer than three finite points are available.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    finite = np.isfinite(ys)
    if finite.sum() < 3:
        raise ValueError("need at least 3 finite points to find a knee")
    idx = np.flatnonzero(finite)
    xf, yf = xs[idx], ys[idx]
    x_span = xf[-1] - xf[0]
    y_span = yf[-1] - yf[0]
    if x_span <= 0 or y_span <= 0:
        raise ValueError("knee detection needs strictly increasing spans")
    x_norm = (xf - xf[0]) / x_span
    y_norm = (yf - yf[0]) / y_span
    knee_local = int(np.argmax(x_norm - y_norm))
    return int(idx[knee_local])


def isolated_shares(server: ServerSpec) -> dict:
    """Full shares of every resource — the isolation (max) allocation."""
    return {r.name: 1.0 for r in server.resources}


def sweep_load(
    workload: LCWorkload,
    server: ServerSpec,
    points: int = 60,
    latency_ceiling: float = 10.0,
) -> LoadSweep:
    """Sweep QPS in isolation and locate the knee (Fig. 6).

    Mirrors how a real load generator (Mutilate, the Tailbench harness)
    produces these curves: load is pushed until tail latency blows past
    any useful level — ``latency_ceiling`` times the unloaded latency —
    and the sweep covers everything up to that point.  Bounding the
    sweep by *latency* rather than by utilization is what places the
    knee (and therefore the workload's "100% load") meaningfully below
    raw saturation, leaving the headroom that makes high-load
    co-location possible at all.
    """
    if points < 3:
        raise ValueError("need at least 3 sweep points")
    if latency_ceiling <= 1:
        raise ValueError("latency ceiling must exceed the unloaded latency")
    shares = isolated_shares(server)
    cores = server.resource(CORES).units
    saturation = capacity_qps(workload, cores, shares)
    unloaded_ms = p95_latency_ms(workload, saturation * 1e-6, cores, shares)
    ceiling_ms = latency_ceiling * unloaded_ms

    # The ceiling QPS exists and is unique because p95 is monotone in load.
    lo, hi = 0.0, saturation * (1.0 - 1e-9)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if p95_latency_ms(workload, mid, cores, shares) < ceiling_ms:
            lo = mid
        else:
            hi = mid
    qmax = 0.5 * (lo + hi)

    fractions = np.linspace(1.0 / points, 1.0, points)
    qps = tuple(float(f * qmax) for f in fractions)
    p95 = tuple(
        p95_latency_ms(workload, rate, cores, shares) for rate in qps
    )
    knee = find_knee(qps, p95)
    return LoadSweep(workload=workload.name, qps=qps, p95_ms=p95, knee_index=knee)


def calibrate(
    workload: LCWorkload,
    server: ServerSpec,
    points: int = 60,
    qos_slack: float = 1.8,
) -> LCWorkload:
    """Return ``workload`` with QoS target and max load set from the knee.

    Args:
        qos_slack: Multiplier applied to the knee latency when setting
            the QoS target.  The default of 1.8 models the headroom
            production QoS targets keep above the knee; without any
            slack a job at 100% load could never be co-located (it
            would need every unit of every resource just to reproduce
            its isolated knee latency), contradicting the co-location
            matrices in the paper's Figs. 7, 8, and 12.
    """
    sweep = sweep_load(workload, server, points=points)
    return workload.calibrated(
        qos_latency_ms=sweep.knee_latency_ms * qos_slack,
        max_qps=sweep.knee_qps,
    )


@dataclass(frozen=True)
class LoadPhase:
    """One step of a piecewise-constant load schedule."""

    start_s: Seconds
    load_fraction: Fraction

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("phase start must be >= 0")
        if not 0 <= self.load_fraction <= 1.5:
            raise ValueError(
                f"load fraction should be in [0, 1.5], got {self.load_fraction}"
            )


@dataclass(frozen=True)
class LoadSchedule:
    """Piecewise-constant load over time for dynamic experiments (Fig. 16)."""

    phases: Tuple[LoadPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a schedule needs at least one phase")
        starts = [p.start_s for p in self.phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phases must have strictly increasing start times")
        if self.phases[0].start_s != 0:
            raise ValueError("the first phase must start at t=0")

    @staticmethod
    def constant(load_fraction: Fraction) -> "LoadSchedule":
        return LoadSchedule((LoadPhase(0.0, load_fraction),))

    @property
    def is_constant(self) -> bool:
        """True when every phase carries the same load fraction.

        A constant schedule can never invalidate a verified placement on
        its own — the warehouse recheck loop uses this to keep such
        nodes out of the per-tick volatile set.
        """
        first = self.phases[0].load_fraction
        return all(p.load_fraction == first for p in self.phases)

    @staticmethod
    def steps(steps: Sequence[Tuple[Seconds, Fraction]]) -> "LoadSchedule":
        """Build a schedule from (start_seconds, load_fraction) pairs."""
        return LoadSchedule(tuple(LoadPhase(t, f) for t, f in steps))

    def load_at(self, t: Seconds) -> Fraction:
        """Load fraction in force at time ``t`` (clamped to the first phase)."""
        if t < 0 or math.isnan(t):
            raise ValueError(f"time must be >= 0, got {t}")
        starts = [p.start_s for p in self.phases]
        i = bisect.bisect_right(starts, t) - 1
        return self.phases[max(i, 0)].load_fraction
