"""Workload abstractions and resource-sensitivity profiles.

The simulator replaces the paper's Tailbench and PARSEC binaries with
analytic performance models.  Each workload owns a *resource profile*: a
per-resource utility curve describing how much of its peak speed it
retains at a given share of that resource.  The curves are concave and
saturating, which is what produces the paper's central phenomenon — the
"resource equivalence class" property where many different partitions
satisfy the same QoS (Sec. 2, Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..core.units import Fraction, Millis, Rate
from ..resources.spec import CORES


@dataclass(frozen=True)
class SensitivityCurve:
    """How one workload's speed scales with its share of one resource.

    The utility of a share ``s`` in ``(0, 1]`` is::

        u(s) = floor + (1 - floor) * (1 - exp(-shape * s)) / (1 - exp(-shape))

    which rises from ``floor`` (performance retained with a minimal
    share) to exactly 1 at full allocation.  ``shape`` controls how
    quickly the curve saturates: large values mean the workload only
    needs a small share (insensitive), values near zero approach a
    linear dependence (highly sensitive throughout).  The curve enters
    the workload's overall multiplier raised to ``weight``, so
    ``weight = 0`` removes the resource from the model entirely.

    Attributes:
        weight: Sensitivity exponent, >= 0.
        shape: Saturation speed, > 0.
        floor: Utility at share -> 0, in [0, 1).
    """

    weight: float = 1.0
    shape: float = 3.0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")
        if self.shape <= 0:
            raise ValueError(f"shape must be > 0, got {self.shape}")
        if not 0 <= self.floor < 1:
            raise ValueError(f"floor must be in [0, 1), got {self.floor}")

    def utility(self, share: Fraction) -> Fraction:
        """Fraction of peak speed retained at ``share`` of the resource."""
        share = min(max(share, 0.0), 1.0)
        rise = (1.0 - math.exp(-self.shape * share)) / (1.0 - math.exp(-self.shape))
        return self.floor + (1.0 - self.floor) * rise

    def contribution(self, share: Fraction) -> Fraction:
        """``utility(share) ** weight`` — this curve's factor of the multiplier."""
        return self.utility(share) ** self.weight


@dataclass(frozen=True)
class ResourceProfile:
    """A workload's sensitivity curves, keyed by resource name.

    Resources absent from ``curves`` do not affect the workload (same as
    ``weight = 0``).
    """

    curves: Mapping[str, SensitivityCurve] = field(default_factory=dict)

    def multiplier(self, shares: Mapping[str, float]) -> Fraction:
        """Combined speed multiplier in ``(0, 1]`` for the given shares.

        ``shares`` maps resource names to fractional allocations in
        ``(0, 1]``.  Resources the profile has no curve for are ignored;
        resources the profile cares about but that are missing from
        ``shares`` are treated as fully allocated (share 1), which is how
        unpartitioned resources behave on a real machine.
        """
        result = 1.0
        for name, curve in self.curves.items():
            result *= curve.contribution(shares.get(name, 1.0))
        return result

    def sensitivity(self, resource: str) -> float:
        """The weight of one resource (0 if the profile ignores it)."""
        curve = self.curves.get(resource)
        return curve.weight if curve is not None else 0.0


@dataclass(frozen=True)
class Workload:
    """Common fields of latency-critical and background workloads.

    Attributes:
        name: Short identifier, e.g. ``"memcached"``.
        description: One-line description (Table 3).
        profile: Resource-sensitivity curves for *non-core* resources.
        core_curve: Scaling curve for the core count itself (used by BG
            jobs, where parallel speedup is sub-linear; LC jobs model
            cores explicitly as queueing servers instead).
        pressure: Contention this job exerts on unpartitioned shared
            hardware (prefetchers, ring bus, SMT) per unit of load.
        contention_sensitivity: How strongly co-runner pressure degrades
            this job.
    """

    name: str
    description: str
    profile: ResourceProfile
    core_curve: SensitivityCurve = SensitivityCurve(weight=1.0, shape=1.0, floor=0.0)
    pressure: float = 0.3
    contention_sensitivity: float = 0.1

    def non_core_multiplier(self, shares: Mapping[str, float]) -> Fraction:
        """Speed multiplier from every resource except cores."""
        filtered: Dict[str, float] = {
            k: v for k, v in shares.items() if k != CORES
        }
        return self.profile.multiplier(filtered)


@dataclass(frozen=True)
class LCWorkload(Workload):
    """A latency-critical job with a QoS tail-latency target.

    An LC job is a two-stage tandem queue (see
    :mod:`repro.workloads.latency`): a per-job single-threaded bottleneck
    stage taking ``serial_fraction`` of each request's work, and a
    parallel stage over the job's allocated cores taking the rest.  The
    serial stage is what saturates first in real latency-critical
    services — it caps maximum load almost independently of core count,
    which is the reason multiple LC jobs fit on one machine at all.

    Attributes:
        base_service_rate: Unit-work completion rate (requests/second of
            total work) with every non-core resource fully allocated.
        serial_fraction: Fraction of each request's work serialized on
            the job's own software bottleneck, in [0, 1).
        qos_latency_ms: 95th-percentile latency target.  ``None`` until
            calibrated from the knee of the QPS-vs-latency curve
            (Fig. 6 methodology, :mod:`repro.workloads.loadgen`).
        max_qps: Load corresponding to 100% in the paper's figures.
            ``None`` until calibrated.
    """

    base_service_rate: Rate = 1000.0
    serial_fraction: Fraction = 0.1
    qos_latency_ms: Millis = None  # type: ignore[assignment]
    max_qps: Rate = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.base_service_rate <= 0:
            raise ValueError("base_service_rate must be positive")
        if not 0 <= self.serial_fraction < 1:
            raise ValueError(
                f"serial_fraction must be in [0, 1), got {self.serial_fraction}"
            )

    def min_cores_for(self, load_capacity_ratio: float) -> float:
        """Cores needed for the parallel stage to sustain a given demand.

        ``load_capacity_ratio`` is the offered load as a fraction of the
        serial stage's capacity; the parallel stage keeps up when
        ``c >= ratio * (1 - sigma) / sigma``.  Purely diagnostic.
        """
        if self.serial_fraction == 0:
            return load_capacity_ratio
        return (
            load_capacity_ratio
            * (1.0 - self.serial_fraction)
            / self.serial_fraction
        )

    def is_calibrated(self) -> bool:
        return self.qos_latency_ms is not None and self.max_qps is not None

    def calibrated(self, qos_latency_ms: Millis, max_qps: Rate) -> "LCWorkload":
        """Return a copy with QoS target and maximum load filled in."""
        from dataclasses import replace

        if qos_latency_ms <= 0 or max_qps <= 0:
            raise ValueError("QoS target and max load must be positive")
        return replace(self, qos_latency_ms=qos_latency_ms, max_qps=max_qps)


@dataclass(frozen=True)
class BGWorkload(Workload):
    """A throughput-oriented background job.

    Attributes:
        base_throughput: Work units/second at full allocation of every
            resource; only ratios to isolated performance matter to the
            paper's metrics, but an absolute scale keeps traces legible.
    """

    base_throughput: float = 100.0

    def __post_init__(self) -> None:
        if self.base_throughput <= 0:
            raise ValueError("base_throughput must be positive")
