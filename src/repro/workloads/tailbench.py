"""Synthetic analogues of the Tailbench latency-critical workloads.

The five LC workloads of Table 3, each with a resource-sensitivity
profile calibrated to the paper's qualitative observations:

* **img-dnn** — image-recognition inference; sensitive to cores and LLC
  ways more than memory bandwidth (Sec. 5.2, Fig. 9 discussion).
* **masstree** — in-memory key-value tree; strongly memory-bandwidth
  sensitive (Fig. 9 discussion), low absolute QPS (Sec. 5.1 notes loads
  as low as 100 QPS).
* **memcached** — very fast key-value operations, core-hungry, only
  mildly cache-sensitive; driven by a Mutilate-like open-loop generator.
* **specjbb** — Java middleware; heap-resident, so sensitive to memory
  capacity and moderately to LLC and bandwidth.
* **xapian** — online search over the English Wikipedia; index probes
  make it LLC-sensitive with a disk-bandwidth component.

Profiles mention resources beyond the default three-resource server
(memory capacity, disk, network); those curves are simply inert unless
the server partitions them, matching how unmanaged resources behave on
real hardware.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import LCWorkload, ResourceProfile, SensitivityCurve
from .loadgen import calibrate
from ..resources.spec import (
    DISK_BANDWIDTH,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    MEMORY_CAPACITY,
    NETWORK_BANDWIDTH,
    ServerSpec,
    default_server,
)

LC_NAMES = ("img-dnn", "masstree", "memcached", "specjbb", "xapian")


def _img_dnn() -> LCWorkload:
    return LCWorkload(
        name="img-dnn",
        description="Image recognition (Tailbench)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.2, shape=3.5, floor=0.20),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.4, shape=5.0, floor=0.30),
                MEMORY_CAPACITY: SensitivityCurve(weight=0.3, shape=5.0, floor=0.30),
            }
        ),
        pressure=0.30,
        contention_sensitivity=0.06,
        base_service_rate=350.0,
        serial_fraction=0.35,
    )


def _masstree() -> LCWorkload:
    return LCWorkload(
        name="masstree",
        description="Key-value store (Tailbench)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.5, shape=5.0, floor=0.30),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=1.3, shape=3.0, floor=0.15),
                MEMORY_CAPACITY: SensitivityCurve(weight=0.6, shape=3.0, floor=0.30),
            }
        ),
        pressure=0.35,
        contention_sensitivity=0.07,
        base_service_rate=150.0,
        serial_fraction=0.45,
    )


def _memcached() -> LCWorkload:
    return LCWorkload(
        name="memcached",
        description="Key-value store (memcached) with Mutilate load generator",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.3, shape=6.0, floor=0.40),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.6, shape=4.0, floor=0.30),
                NETWORK_BANDWIDTH: SensitivityCurve(weight=0.8, shape=3.0, floor=0.25),
            }
        ),
        pressure=0.40,
        contention_sensitivity=0.05,
        base_service_rate=30000.0,
        serial_fraction=0.30,
    )


def _specjbb() -> LCWorkload:
    return LCWorkload(
        name="specjbb",
        description="Java middleware (Tailbench)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.8, shape=4.0, floor=0.25),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.7, shape=4.0, floor=0.25),
                MEMORY_CAPACITY: SensitivityCurve(weight=1.0, shape=2.5, floor=0.20),
            }
        ),
        pressure=0.30,
        contention_sensitivity=0.06,
        base_service_rate=1200.0,
        serial_fraction=0.35,
    )


def _xapian() -> LCWorkload:
    return LCWorkload(
        name="xapian",
        description="Online search over English Wikipedia (Tailbench)",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.0, shape=4.0, floor=0.25),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.6, shape=3.5, floor=0.30),
                DISK_BANDWIDTH: SensitivityCurve(weight=0.5, shape=4.0, floor=0.30),
            }
        ),
        pressure=0.25,
        contention_sensitivity=0.06,
        base_service_rate=800.0,
        serial_fraction=0.35,
    )


_FACTORIES = {
    "img-dnn": _img_dnn,
    "masstree": _masstree,
    "memcached": _memcached,
    "specjbb": _specjbb,
    "xapian": _xapian,
}

_CALIBRATION_CACHE: Dict[tuple, LCWorkload] = {}


def lc_workload(
    name: str,
    server: Optional[ServerSpec] = None,
    calibrated: bool = True,
) -> LCWorkload:
    """Build one Tailbench LC workload by name.

    With ``calibrated=True`` (the default) the workload's QoS target and
    maximum load are derived from the knee of its isolated QPS-vs-p95
    curve on ``server`` (Fig. 6 methodology).  Calibrations are cached
    per (workload, server).
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown LC workload {name!r}; choose from {LC_NAMES}")
    workload = _FACTORIES[name]()
    if not calibrated:
        return workload
    server = server or default_server()
    key = (name, server.resource_names, tuple(r.units for r in server.resources))
    if key not in _CALIBRATION_CACHE:
        _CALIBRATION_CACHE[key] = calibrate(workload, server)
    return _CALIBRATION_CACHE[key]


def tailbench_catalog(
    server: Optional[ServerSpec] = None,
    calibrated: bool = True,
) -> Dict[str, LCWorkload]:
    """All five Tailbench LC workloads (Table 3), keyed by name."""
    return {name: lc_workload(name, server, calibrated) for name in LC_NAMES}
