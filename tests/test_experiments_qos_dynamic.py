"""Unit tests for QoS regions (Figs. 1-2) and dynamic adaptation (Fig. 16)."""

import numpy as np
import pytest

from repro.core import CLITEConfig
from repro.experiments import (
    MixSpec,
    coordinate_descent_reaches,
    overlap_region,
    qos_region,
    run_dynamic,
)
from repro.workloads import LoadSchedule


class TestQoSRegion:
    def test_region_shape(self):
        region = qos_region("img-dnn", 0.5)
        assert len(region.axis_a_units) == 10  # cores
        assert len(region.axis_b_units) == 11  # llc ways

    def test_monotone_in_both_axes(self):
        """More of either resource never breaks a safe allocation."""
        region = qos_region("img-dnn", 0.5)
        safe = np.array(region.safe)
        for i in range(safe.shape[0] - 1):
            for j in range(safe.shape[1]):
                if safe[i, j]:
                    assert safe[i + 1, j]
        for i in range(safe.shape[0]):
            for j in range(safe.shape[1] - 1):
                if safe[i, j]:
                    assert safe[i, j + 1]

    def test_resource_equivalence_frontier(self):
        """Multiple (cores, ways) trade-offs meet the same QoS (Fig. 1)."""
        region = qos_region("img-dnn", 0.5)
        frontier = region.frontier()
        assert len(frontier) >= 2
        ways_needed = [b for _, b in frontier]
        # Fewer cores require at least as many ways.
        assert ways_needed == sorted(ways_needed, reverse=True) or len(
            set(ways_needed)
        ) > 1

    def test_higher_load_shrinks_region(self):
        light = np.array(qos_region("xapian", 0.2).safe).sum()
        heavy = np.array(qos_region("xapian", 0.9).safe).sum()
        assert heavy < light

    def test_region_over_other_resource_pair(self):
        region = qos_region("masstree", 0.5, resource_a="cores", resource_b="membw")
        assert len(region.axis_b_units) == 10


class TestOverlap:
    def test_complementary_jobs_overlap(self):
        a = qos_region("memcached", 0.3)
        b = qos_region("img-dnn", 0.3)
        overlap = overlap_region(a, b)
        assert overlap.any()

    def test_mismatched_regions_rejected(self):
        a = qos_region("memcached", 0.3)
        b = qos_region("img-dnn", 0.3, resource_b="membw")
        with pytest.raises(ValueError, match="same resource pair"):
            overlap_region(a, b)

    def test_heavy_loads_shrink_overlap(self):
        light = overlap_region(
            qos_region("memcached", 0.2), qos_region("img-dnn", 0.2)
        )
        heavy = overlap_region(
            qos_region("memcached", 0.9), qos_region("img-dnn", 0.9)
        )
        assert heavy.sum() <= light.sum()


class TestCoordinateDescent:
    def test_reaches_adjacent_region(self):
        overlap = np.zeros((5, 5), dtype=bool)
        overlap[2, 3] = True
        assert coordinate_descent_reaches(overlap, start=(2, 2))

    def test_cannot_reach_far_disconnected_region(self):
        overlap = np.zeros((6, 6), dtype=bool)
        overlap[5, 5] = True
        assert not coordinate_descent_reaches(overlap, start=(0, 0))

    def test_empty_overlap_unreachable(self):
        assert not coordinate_descent_reaches(
            np.zeros((3, 3), dtype=bool), start=(1, 1)
        )

    def test_start_inside_overlap(self):
        overlap = np.zeros((3, 3), dtype=bool)
        overlap[1, 1] = True
        assert coordinate_descent_reaches(overlap, start=(1, 1))

    def test_bad_start_rejected(self):
        overlap = np.zeros((3, 3), dtype=bool)
        with pytest.raises(IndexError):
            coordinate_descent_reaches(overlap, start=(5, 5))

    def test_non_bool_rejected(self):
        with pytest.raises(ValueError):
            coordinate_descent_reaches(np.zeros((3, 3)), start=(0, 0))


class TestRunDynamic:
    @pytest.fixture
    def dynamic_mix(self):
        ramp = LoadSchedule.steps([(0, 0.1), (150, 0.3)])
        return MixSpec.of(
            lc=[("img-dnn", 0.1), ("memcached", ramp)],
            bg=["fluidanimate"],
        )

    @pytest.fixture
    def fast_config(self):
        return CLITEConfig(
            seed=0,
            max_iterations=10,
            ei_min_iterations=2,
            post_qos_iterations=2,
            confirm_top=1,
            n_restarts=3,
        )

    def test_trace_covers_total_time(self, dynamic_mix, fast_config):
        trace = run_dynamic(dynamic_mix, total_time_s=250, engine_config=fast_config)
        assert trace.events
        assert trace.events[-1].time_s >= 200

    def test_load_change_triggers_reinvocation(self, dynamic_mix, fast_config):
        trace = run_dynamic(dynamic_mix, total_time_s=300, engine_config=fast_config)
        assert trace.reinvocations  # the 10% -> 30% step was noticed
        assert all(t >= 150 for t in trace.reinvocations)

    def test_series_accessors(self, dynamic_mix, fast_config):
        trace = run_dynamic(dynamic_mix, total_time_s=250, engine_config=fast_config)
        bg = trace.bg_series("fluidanimate")
        assert all(v > 0 for _, v in bg)
        loads = trace.load_series("memcached")
        assert loads[0][1] == pytest.approx(0.1)
        assert loads[-1][1] == pytest.approx(0.3)
        alloc = trace.allocation_series(0, 0)
        assert all(isinstance(units, int) and units >= 1 for _, units in alloc)

    def test_invalid_total_time(self, dynamic_mix):
        with pytest.raises(ValueError):
            run_dynamic(dynamic_mix, total_time_s=0)
