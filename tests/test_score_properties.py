"""Property-based tests of the Eq. 3 score function's invariants."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QOS_MET_THRESHOLD, ScoreFunction
from repro.server.node import BG_ROLE, LC_ROLE, JobObservation, Observation
from repro.resources import Configuration


def lc_reading(name: str, p95: float, target: float) -> JobObservation:
    return JobObservation(
        name=name,
        role=LC_ROLE,
        load_fraction=0.5,
        qps=100.0,
        p95_ms=p95,
        qos_target_ms=target,
        throughput_norm=None,
    )


def bg_reading(name: str, perf: float) -> JobObservation:
    return JobObservation(
        name=name,
        role=BG_ROLE,
        load_fraction=None,
        qps=None,
        p95_ms=None,
        qos_target_ms=None,
        throughput_norm=perf,
    )


def observation(jobs) -> Observation:
    return Observation(
        config=Configuration.from_matrix([[1] for _ in jobs]),
        time_s=0.0,
        window_s=2.0,
        jobs=tuple(jobs),
    )


latencies = st.floats(0.01, 10_000.0, allow_nan=False)
targets = st.floats(0.1, 100.0, allow_nan=False)
perfs = st.floats(0.001, 1.0, allow_nan=False)


@given(
    p95s=st.lists(latencies, min_size=1, max_size=4),
    target=targets,
    bg=perfs,
)
@settings(max_examples=120, deadline=None)
def test_score_always_in_unit_interval(p95s, target, bg):
    fn = ScoreFunction()
    jobs = [lc_reading(f"lc{i}", p, target) for i, p in enumerate(p95s)]
    jobs.append(bg_reading("bg", bg))
    score = fn(observation(jobs))
    assert 0.0 <= score <= 1.0


@given(
    p95s=st.lists(latencies, min_size=1, max_size=4),
    target=targets,
    bg=perfs,
)
@settings(max_examples=120, deadline=None)
def test_mode_split_at_half(p95s, target, bg):
    """Violating mixes never score above 0.5; feasible mixes never below."""
    fn = ScoreFunction()
    jobs = [lc_reading(f"lc{i}", p, target) for i, p in enumerate(p95s)]
    jobs.append(bg_reading("bg", bg))
    obs = observation(jobs)
    score = fn(obs)
    if all(p <= target for p in p95s):
        assert score >= QOS_MET_THRESHOLD
    else:
        assert score <= QOS_MET_THRESHOLD


@given(
    target=targets,
    bg_lo=perfs,
    bg_hi=perfs,
)
@settings(max_examples=100, deadline=None)
def test_mode2_monotone_in_bg_performance(target, bg_lo, bg_hi):
    fn = ScoreFunction()
    lo, hi = sorted((bg_lo, bg_hi))
    lc = lc_reading("lc", target * 0.5, target)
    score_lo = fn(observation([lc, bg_reading("bg", lo)]))
    score_hi = fn(observation([lc, bg_reading("bg", hi)]))
    assert score_hi >= score_lo - 1e-12


@given(
    target=targets,
    near=st.floats(1.01, 2.0, allow_nan=False),
    far=st.floats(2.01, 50.0, allow_nan=False),
    bg=perfs,
)
@settings(max_examples=100, deadline=None)
def test_mode1_monotone_in_violation_depth(target, near, far, bg):
    """A job closer to its target scores higher than one further away —
    the smoothness Sec. 4 demands of the objective."""
    fn = ScoreFunction()
    score_near = fn(
        observation(
            [lc_reading("lc", target * near, target), bg_reading("bg", bg)]
        )
    )
    score_far = fn(
        observation(
            [lc_reading("lc", target * far, target), bg_reading("bg", bg)]
        )
    )
    assert score_near >= score_far - 1e-12


@given(
    target=targets,
    p95=st.floats(0.01, 100.0, allow_nan=False),
    bg=perfs,
)
@settings(max_examples=80, deadline=None)
def test_mode1_ignores_bg_performance(target, p95, bg):
    """Until every LC job meets QoS, BG throughput must not buy score."""
    fn = ScoreFunction()
    violating = target * (1.0 + p95 / 100.0 + 0.01)
    base = fn(
        observation(
            [lc_reading("lc", violating, target), bg_reading("bg", 0.01)]
        )
    )
    rich = fn(
        observation(
            [lc_reading("lc", violating, target), bg_reading("bg", bg)]
        )
    )
    assert base == pytest.approx(rich)


@given(target=targets, bg=perfs, baseline=st.floats(0.05, 1.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_bg_baseline_normalization(target, bg, baseline):
    """Recording an isolation baseline rescales the BG term."""
    fn = ScoreFunction()
    iso = observation([bg_reading("bg", baseline)])
    fn.record_isolation("bg", iso)
    lc = lc_reading("lc", target * 0.5, target)
    score = fn(observation([lc, bg_reading("bg", bg)]))
    expected_tail = min(1.0, bg / baseline)
    assert score == pytest.approx(0.5 + 0.5 * expected_tail)


def test_replace_keeps_observation_frozen():
    obs = observation([bg_reading("bg", 0.5)])
    clone = replace(obs, time_s=5.0)
    assert clone.time_s == 5.0
    assert obs.time_s == 0.0
