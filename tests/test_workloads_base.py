"""Unit and property tests for workload profiles and sensitivity curves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.workloads import (
    BGWorkload,
    LCWorkload,
    ResourceProfile,
    SensitivityCurve,
)

from conftest import make_bg, make_lc


class TestSensitivityCurve:
    def test_full_share_gives_unity(self):
        curve = SensitivityCurve(weight=1.0, shape=3.0, floor=0.1)
        assert curve.utility(1.0) == pytest.approx(1.0)

    def test_zero_share_gives_floor(self):
        curve = SensitivityCurve(weight=1.0, shape=3.0, floor=0.1)
        assert curve.utility(0.0) == pytest.approx(0.1)

    def test_monotone_increasing(self):
        curve = SensitivityCurve(weight=1.0, shape=2.0, floor=0.05)
        values = [curve.utility(s / 10) for s in range(11)]
        assert values == sorted(values)

    def test_shares_clamped(self):
        curve = SensitivityCurve()
        assert curve.utility(-0.5) == curve.utility(0.0)
        assert curve.utility(1.5) == curve.utility(1.0)

    def test_higher_shape_saturates_faster(self):
        gentle = SensitivityCurve(shape=1.0, floor=0.0)
        steep = SensitivityCurve(shape=8.0, floor=0.0)
        assert steep.utility(0.3) > gentle.utility(0.3)

    def test_zero_weight_contribution_is_one(self):
        curve = SensitivityCurve(weight=0.0)
        assert curve.contribution(0.1) == pytest.approx(1.0)

    def test_contribution_raises_utility_to_weight(self):
        curve = SensitivityCurve(weight=2.0, shape=3.0, floor=0.2)
        assert curve.contribution(0.5) == pytest.approx(curve.utility(0.5) ** 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": -0.1},
            {"shape": 0.0},
            {"shape": -1.0},
            {"floor": 1.0},
            {"floor": -0.1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SensitivityCurve(**kwargs)


class TestResourceProfile:
    def test_empty_profile_multiplier_is_one(self):
        assert ResourceProfile().multiplier({LLC_WAYS: 0.1}) == 1.0

    def test_missing_share_treated_as_full(self):
        profile = ResourceProfile({LLC_WAYS: SensitivityCurve()})
        assert profile.multiplier({}) == pytest.approx(1.0)

    def test_multiplier_multiplies_contributions(self):
        profile = ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.0, shape=3.0, floor=0.2),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=1.0, shape=3.0, floor=0.2),
            }
        )
        shares = {LLC_WAYS: 0.4, MEMORY_BANDWIDTH: 0.6}
        expected = profile.curves[LLC_WAYS].contribution(0.4) * profile.curves[
            MEMORY_BANDWIDTH
        ].contribution(0.6)
        assert profile.multiplier(shares) == pytest.approx(expected)

    def test_sensitivity_lookup(self):
        profile = ResourceProfile({LLC_WAYS: SensitivityCurve(weight=1.3)})
        assert profile.sensitivity(LLC_WAYS) == 1.3
        assert profile.sensitivity(CORES) == 0.0

    def test_irrelevant_resources_ignored(self):
        profile = ResourceProfile({LLC_WAYS: SensitivityCurve()})
        with_extra = profile.multiplier({LLC_WAYS: 0.5, "disk": 0.01})
        without = profile.multiplier({LLC_WAYS: 0.5})
        assert with_extra == without


class TestLCWorkload:
    def test_calibrated_roundtrip(self):
        raw = make_lc(qos_latency_ms=None, max_qps=None)
        assert not raw.is_calibrated()
        done = raw.calibrated(qos_latency_ms=5.0, max_qps=100.0)
        assert done.is_calibrated()
        assert done.qos_latency_ms == 5.0
        assert done.max_qps == 100.0

    def test_calibrated_rejects_nonpositive(self):
        raw = make_lc()
        with pytest.raises(ValueError):
            raw.calibrated(qos_latency_ms=0.0, max_qps=10.0)
        with pytest.raises(ValueError):
            raw.calibrated(qos_latency_ms=1.0, max_qps=-1.0)

    def test_invalid_service_rate(self):
        with pytest.raises(ValueError):
            make_lc(base_service_rate=0.0)

    def test_invalid_serial_fraction(self):
        with pytest.raises(ValueError):
            make_lc(serial_fraction=1.0)
        with pytest.raises(ValueError):
            make_lc(serial_fraction=-0.1)

    def test_min_cores_diagnostic(self):
        lc = make_lc(serial_fraction=0.5)
        assert lc.min_cores_for(1.0) == pytest.approx(1.0)
        lc0 = make_lc(serial_fraction=0.0, qos_latency_ms=1.0, max_qps=1.0)
        assert lc0.min_cores_for(2.0) == 2.0

    def test_non_core_multiplier_excludes_cores(self):
        lc = make_lc()
        with_cores = lc.non_core_multiplier({CORES: 0.01, LLC_WAYS: 0.5})
        without = lc.non_core_multiplier({LLC_WAYS: 0.5})
        assert with_cores == without


class TestBGWorkload:
    def test_invalid_throughput(self):
        with pytest.raises(ValueError):
            BGWorkload(
                name="x",
                description="",
                profile=ResourceProfile(),
                base_throughput=0.0,
            )

    def test_make_bg_fixture_valid(self):
        bg = make_bg()
        assert bg.base_throughput > 0
        assert bg.core_curve.weight == 1.0


@given(
    weight=st.floats(0.0, 3.0, allow_nan=False),
    shape=st.floats(0.1, 10.0, allow_nan=False),
    floor=st.floats(0.0, 0.9, allow_nan=False),
    s1=st.floats(0.0, 1.0, allow_nan=False),
    s2=st.floats(0.0, 1.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_curve_contribution_monotone_and_bounded(weight, shape, floor, s1, s2):
    curve = SensitivityCurve(weight=weight, shape=shape, floor=floor)
    lo, hi = sorted((s1, s2))
    assert curve.contribution(lo) <= curve.contribution(hi) + 1e-12
    assert 0.0 <= curve.contribution(s1) <= 1.0 + 1e-12
