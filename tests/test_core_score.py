"""Unit tests for the Eq. 3 score function."""

import pytest

from repro.core import QOS_MET_THRESHOLD, ScoreFunction, qos_met

from conftest import make_node


@pytest.fixture
def node(mini_server):
    return make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.0)


@pytest.fixture
def score_fn(node):
    fn = ScoreFunction()
    for j, job in enumerate(node.jobs):
        fn.record_isolation(job.name, node.true_performance(node.space.max_allocation(j)))
    return fn


class TestModeOne:
    """Some LC job violates QoS -> score <= 0.5."""

    def test_violation_caps_at_half(self, node, score_fn):
        # Starve both LC jobs by giving everything to the BG job.
        obs = node.true_performance(node.space.max_allocation(2))
        score = score_fn(obs)
        assert score <= 0.5
        assert not qos_met(score)

    def test_closer_to_qos_scores_higher(self, mini_server, score_fn):
        light = make_node(mini_server, lc_loads=(0.55, 0.3), n_bg=1)
        heavy = make_node(mini_server, lc_loads=(0.95, 0.3), n_bg=1)
        config = light.space.max_allocation(2)
        s_light = score_fn(light.true_performance(config))
        s_heavy = score_fn(heavy.true_performance(config))
        if s_light <= 0.5 and s_heavy <= 0.5:  # both violating
            assert s_light >= s_heavy

    def test_overloaded_queue_scores_low_but_graded(self, mini_server, score_fn):
        node_hi = make_node(mini_server, lc_loads=(1.0, 0.9), n_bg=1)
        obs = node_hi.true_performance(node_hi.space.max_allocation(2))
        score = score_fn(obs)
        assert 0.0 <= score < 0.1


class TestModeTwo:
    """Every LC job meets QoS -> 0.5 + BG term."""

    def test_qos_met_scores_above_half(self, node, score_fn):
        obs = node.true_performance(node.space.equal_partition())
        assert obs.all_qos_met
        score = score_fn(obs)
        assert score > QOS_MET_THRESHOLD
        assert qos_met(score)

    def test_better_bg_scores_higher(self, node, score_fn):
        equal = node.true_performance(node.space.equal_partition())
        # Shift a membw unit from a slack LC job to the BG job.
        shifted = equal.config.with_transfer(2, donor=0, receiver=2)
        obs2 = node.true_performance(shifted)
        if obs2.all_qos_met:
            assert score_fn(obs2) > score_fn(equal)

    def test_score_bounded_by_one(self, node, score_fn):
        obs = node.true_performance(node.space.max_allocation(2))
        # BG at max allocation with LC jobs violating -> mode 1 anyway,
        # but even a perfect mode-2 score caps at 1.
        for j in range(3):
            score = score_fn(node.true_performance(node.space.max_allocation(j)))
            assert 0.0 <= score <= 1.0
        del obs


class TestNoBGMode:
    def test_lc_only_mix_uses_latency_improvement(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=0)
        fn = ScoreFunction()
        for j, job in enumerate(node.jobs):
            fn.record_isolation(
                job.name, node.true_performance(node.space.max_allocation(j))
            )
        obs = node.true_performance(node.space.equal_partition())
        assert obs.all_qos_met
        score = fn(obs)
        assert 0.5 < score <= 1.0

    def test_lc_only_prefers_lower_latency(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.5, 0.1), n_bg=0)
        fn = ScoreFunction()
        for j, job in enumerate(node.jobs):
            fn.record_isolation(
                job.name, node.true_performance(node.space.max_allocation(j))
            )
        equal = node.true_performance(node.space.equal_partition())
        # Give the loaded job an extra core from the idle one.
        better = node.true_performance(
            equal.config.with_transfer(0, donor=1, receiver=0)
        )
        if equal.all_qos_met and better.all_qos_met:
            assert fn(better) != fn(equal)  # latency changes move the score


class TestBaselines:
    def test_isolation_recorded(self, node):
        fn = ScoreFunction()
        obs = node.true_performance(node.space.max_allocation(2))
        fn.record_isolation("bg0", obs)
        assert fn.iso_bg_perf("bg0") == pytest.approx(
            obs.job("bg0").throughput_norm
        )

    def test_lc_isolation_recorded(self, node):
        fn = ScoreFunction()
        obs = node.true_performance(node.space.max_allocation(0))
        fn.record_isolation("lc0", obs)
        assert fn.iso_lc_latency("lc0") == pytest.approx(obs.job("lc0").p95_ms)

    def test_missing_baseline_defaults(self, node):
        """Without baselines the raw normalized readings are used."""
        fn = ScoreFunction()
        obs = node.true_performance(node.space.equal_partition())
        score = fn(obs)
        assert 0.0 <= score <= 1.0

    def test_saturated_isolation_not_recorded(self, mini_server):
        node_hot = make_node(mini_server, lc_loads=(1.0,), n_bg=2)
        fn = ScoreFunction()
        # Starved allocation: lc0 saturates -> latency is the overload
        # proxy, which is finite, so it IS recorded; but a plain inf
        # would not be.  Exercise the public path anyway.
        obs = node_hot.true_performance(node_hot.space.max_allocation(1))
        fn.record_isolation("lc0", obs)
        assert fn.iso_lc_latency("lc0") is None or fn.iso_lc_latency("lc0") > 0


class TestEdgeCases:
    def test_empty_observation_rejected(self, node, score_fn):
        obs = node.true_performance(node.space.equal_partition())
        from dataclasses import replace

        with pytest.raises(ValueError, match="no jobs"):
            score_fn(replace(obs, jobs=()))

    def test_threshold_semantics(self):
        assert qos_met(0.5)
        assert qos_met(0.9)
        assert not qos_met(0.49)
