"""Unit and integration tests for cluster-level placement."""

import pytest

from repro.cluster import (
    CLITEPlacement,
    Cluster,
    DedicatedPlacement,
    FirstFitPlacement,
    JobRequest,
    utilization_summary,
    verify_node,
    verify_nodes,
)
from repro.cluster.state import ClusterNode
from repro.core import CLITEConfig

from conftest import make_bg, make_lc


FAST_ENGINE = CLITEConfig(
    max_iterations=10,
    post_qos_iterations=3,
    refine_budget=5,
    confirm_top=1,
    n_restarts=3,
)


def lc_request(name: str, load: float = 0.3) -> JobRequest:
    return JobRequest(make_lc(name), load, name=name)


def bg_request(name: str) -> JobRequest:
    return JobRequest(make_bg(name), name=name)


class TestJobRequest:
    def test_lc_needs_load(self):
        with pytest.raises(ValueError, match="need a load"):
            JobRequest(make_lc())

    def test_bg_rejects_load(self):
        with pytest.raises(ValueError, match="do not take a load"):
            JobRequest(make_bg(), 0.5)

    def test_load_bounds(self):
        with pytest.raises(ValueError):
            JobRequest(make_lc(), 0.0)
        with pytest.raises(ValueError):
            JobRequest(make_lc(), 1.5)

    def test_request_name_defaults_to_workload(self):
        assert JobRequest(make_bg("canneal-like")).request_name == "canneal-like"
        assert JobRequest(make_bg(), name="batch-7").request_name == "batch-7"

    def test_to_job_renames(self):
        request = JobRequest(make_lc("svc"), 0.4, name="svc-2")
        job = request.to_job()
        assert job.name == "svc-2"
        assert job.is_lc
        assert job.load.load_at(0) == 0.4


class TestClusterNode:
    def test_can_host_rejects_duplicates(self, mini_server):
        node = ClusterNode(0, mini_server).with_request(lc_request("a"))
        assert not node.can_host(lc_request("a"))
        assert node.can_host(lc_request("b"))

    def test_can_host_respects_max_jobs(self, mini_server):
        node = ClusterNode(0, mini_server)
        for i in range(mini_server.max_jobs()):
            node = node.with_request(bg_request(f"j{i}"))
        assert not node.can_host(bg_request("overflow"))

    def test_with_request_immutable(self, mini_server):
        node = ClusterNode(0, mini_server)
        node.with_request(lc_request("a"))
        assert node.n_jobs == 0

    def test_build_node(self, mini_server):
        node_state = ClusterNode(0, mini_server).with_request(lc_request("a"))
        node_state = node_state.with_request(bg_request("b"))
        node = node_state.build_node(seed=0)
        assert node.job_names() == ("a", "b")

    def test_build_empty_rejected(self, mini_server):
        with pytest.raises(ValueError, match="empty"):
            ClusterNode(0, mini_server).build_node()


class TestCluster:
    def test_construction(self, mini_server):
        cluster = Cluster(n_nodes=3, spec=mini_server)
        assert cluster.machines_used() == 0
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)

    def test_place_and_bookkeeping(self, mini_server):
        cluster = Cluster(n_nodes=3, spec=mini_server)
        cluster.place(1, lc_request("a"))
        cluster.place(1, bg_request("b"))
        assert cluster.machines_used() == 1
        assert cluster.placements() == {"a": 1, "b": 1}

    def test_place_validates_node_index(self, mini_server):
        """Regression: out-of-range indices were accepted silently —
        negative ones wrapped via Python list indexing and corrupted the
        placement (the request landed on the node counted from the end)."""
        cluster = Cluster(n_nodes=3, spec=mini_server)
        with pytest.raises(IndexError, match="out of range"):
            cluster.place(3, lc_request("a"))
        with pytest.raises(IndexError, match="out of range"):
            cluster.place(-1, lc_request("a"))
        with pytest.raises(ValueError, match="must be an int"):
            cluster.place(True, lc_request("a"))
        assert cluster.machines_used() == 0
        cluster.place(2, lc_request("a"))
        assert cluster.placements() == {"a": 2}


class TestVerifyNode:
    def test_feasible_node_verifies(self, mini_server):
        state = (
            ClusterNode(0, mini_server)
            .with_request(lc_request("a", 0.3))
            .with_request(bg_request("b"))
        )
        qos, bg = verify_node(state, FAST_ENGINE, seed=0)
        assert qos
        assert bg is not None and 0 < bg <= 1

    def test_lc_only_node_reports_no_bg(self, mini_server):
        state = ClusterNode(0, mini_server).with_request(lc_request("a", 0.3))
        qos, bg = verify_node(state, FAST_ENGINE, seed=0)
        assert qos
        assert bg is None

    def test_same_seed_same_report(self, mini_server):
        """Regression: build_node once accepted a seed and silently
        dropped it, leaving the counters on ambient entropy — two
        same-seed verifications could then disagree (the rare flake)."""
        state = (
            ClusterNode(0, mini_server)
            .with_request(lc_request("a", 0.3))
            .with_request(bg_request("b"))
        )
        reports = {verify_node(state, FAST_ENGINE, seed=7) for _ in range(3)}
        assert len(reports) == 1

    def test_seed_reaches_counters(self, mini_server):
        state = ClusterNode(0, mini_server).with_request(lc_request("a", 0.3))
        a = state.build_node(seed=3)
        b = state.build_node(seed=3)
        config = a.space.equal_partition()
        assert a.observe(config).jobs == b.observe(config).jobs


class TestVerifyNodes:
    def _states(self, mini_server, n=3):
        states = []
        for i in range(n):
            states.append(
                ClusterNode(i, mini_server)
                .with_request(lc_request(f"svc-{i}", 0.3))
                .with_request(bg_request(f"batch-{i}"))
            )
        return states

    def test_parallel_matches_serial(self, mini_server):
        """Each node's engine run is deterministic given the seed, so the
        thread-pool fan-out must reproduce the serial reports exactly."""
        states = self._states(mini_server)
        serial = verify_nodes(states, FAST_ENGINE, seed=0, max_workers=1)
        parallel = verify_nodes(states, FAST_ENGINE, seed=0, max_workers=3)
        assert serial == parallel
        assert set(serial) == {0, 1, 2}
        for state in states:
            assert serial[state.index] == verify_node(state, FAST_ENGINE, 0)

    def test_empty_and_single(self, mini_server):
        assert verify_nodes([], FAST_ENGINE, seed=0) == {}
        (state,) = self._states(mini_server, n=1)
        reports = verify_nodes([state], FAST_ENGINE, seed=0)
        assert reports == {0: verify_node(state, FAST_ENGINE, 0)}

    def test_shared_store_across_parallel_workers(self, mini_server, tmp_path):
        """One store backs every pool worker; identical job sets share a
        fingerprint, and a warm store makes re-verification physics-free
        without changing any report."""
        from repro.server import ObservationStore

        # Same workload set on every node -> same fingerprint.
        states = [
            ClusterNode(i, mini_server)
            .with_request(lc_request("svc", 0.3))
            .with_request(bg_request("batch"))
            for i in range(3)
        ]
        baseline = verify_nodes(states, FAST_ENGINE, seed=0, max_workers=3)
        store = ObservationStore(tmp_path / "verify.jsonl")
        cold = verify_nodes(
            states, FAST_ENGINE, seed=0, max_workers=3, store=store
        )
        assert cold == baseline
        warm_misses = store.stats().misses
        warm = verify_nodes(
            states, FAST_ENGINE, seed=0, max_workers=3, store=store
        )
        assert warm == baseline
        # The second round re-reads truths the first round published.
        assert store.stats().hits > 0
        assert store.stats().misses == warm_misses

    def test_policy_verify_workers_same_outcome(self, mini_server):
        requests = [
            lc_request("svc-1", 0.3),
            bg_request("batch-1"),
            lc_request("svc-2", 0.3),
            bg_request("batch-2"),
        ]
        outcomes = []
        for workers in (1, 4):
            cluster = Cluster(n_nodes=4, spec=mini_server)
            policy = DedicatedPlacement(verify_workers=workers)
            # Dedicated placement with FAST settings is still slow-ish;
            # swap in the fast engine by verifying manually instead.
            policy.verify = False
            out = policy.place(cluster, requests, seed=0)
            reports = verify_nodes(
                cluster.used_nodes(), FAST_ENGINE, 0, workers
            )
            outcomes.append((out.placements, reports))
        assert outcomes[0] == outcomes[1]


class TestPolicies:
    @pytest.fixture
    def stream(self):
        return [
            lc_request("svc-1", 0.3),
            lc_request("svc-2", 0.3),
            bg_request("batch-1"),
            bg_request("batch-2"),
        ]

    def test_dedicated_one_per_machine(self, mini_server, stream):
        cluster = Cluster(n_nodes=6, spec=mini_server)
        out = DedicatedPlacement(verify=False).place(cluster, stream)
        assert out.machines_used == 4
        assert len(set(out.placements.values())) == 4
        assert out.rejected == ()

    def test_dedicated_rejects_when_full(self, mini_server, stream):
        cluster = Cluster(n_nodes=2, spec=mini_server)
        out = DedicatedPlacement(verify=False).place(cluster, stream)
        assert out.machines_used == 2
        assert len(out.rejected) == 2

    def test_first_fit_packs(self, mini_server, stream):
        cluster = Cluster(n_nodes=6, spec=mini_server)
        out = FirstFitPlacement(max_jobs_per_node=4, verify=False).place(
            cluster, stream
        )
        assert out.machines_used == 1

    def test_first_fit_cap(self, mini_server, stream):
        cluster = Cluster(n_nodes=6, spec=mini_server)
        out = FirstFitPlacement(max_jobs_per_node=2, verify=False).place(
            cluster, stream
        )
        assert out.machines_used == 2

    def test_clite_placement_meets_qos(self, mini_server, stream):
        cluster = Cluster(n_nodes=6, spec=mini_server)
        policy = CLITEPlacement(
            max_jobs_per_node=3, engine_config=FAST_ENGINE
        )
        out = policy.place(cluster, stream, seed=0)
        assert out.rejected == ()
        assert out.all_qos_met
        # It co-locates (beats dedicated) while keeping QoS.
        assert out.machines_used < 4

    def test_clite_placement_spreads_heavy_jobs(self, mini_server):
        heavy = [
            lc_request("hot-1", 0.9),
            lc_request("hot-2", 0.9),
            lc_request("hot-3", 0.9),
        ]
        cluster = Cluster(n_nodes=4, spec=mini_server)
        policy = CLITEPlacement(max_jobs_per_node=3, engine_config=FAST_ENGINE)
        out = policy.place(cluster, heavy, seed=0)
        assert out.all_qos_met
        # Three 90%-load services cannot share one small box.
        assert out.machines_used >= 2

    def test_utilization_summary(self, mini_server, stream):
        cluster = Cluster(n_nodes=4, spec=mini_server)
        out = FirstFitPlacement(verify=False).place(cluster, stream)
        summary = utilization_summary(out, 4)
        assert summary["machines_used"] == 1
        assert summary["utilization"] == 0.25
        with pytest.raises(ValueError):
            utilization_summary(out, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FirstFitPlacement(max_jobs_per_node=0)
        with pytest.raises(ValueError):
            CLITEPlacement(max_jobs_per_node=0)

    def test_clite_fallback_respects_can_host(self, mini_server):
        """Regression: the fresh-machine fallback skipped can_host, so a
        request an empty node could not actually absorb crashed placement
        with ValueError instead of being cleanly rejected."""

        class _ZeroCapacitySpec:
            def max_jobs(self):
                return 0

        cluster = Cluster(n_nodes=2, spec=mini_server)
        cluster.nodes[0] = ClusterNode(0, _ZeroCapacitySpec())
        cluster.nodes[1] = ClusterNode(1, _ZeroCapacitySpec())
        policy = CLITEPlacement(engine_config=FAST_ENGINE, verify=False)
        out = policy.place(cluster, [lc_request("svc", 0.3)], seed=0)
        assert out.rejected == ("svc",)
        assert out.machines_used == 0


class TestHeterogeneousCluster:
    def test_per_node_specs(self, mini_server, tiny_server):
        from repro.cluster import Cluster

        cluster = Cluster(n_nodes=2, specs=[mini_server, tiny_server])
        assert cluster.nodes[0].spec is mini_server
        assert cluster.nodes[1].spec is tiny_server

    def test_spec_count_mismatch_rejected(self, mini_server):
        from repro.cluster import Cluster

        with pytest.raises(ValueError, match="specs for"):
            Cluster(n_nodes=3, specs=[mini_server])

    def test_placement_respects_small_node_capacity(self, mini_server, tiny_server):
        """A 4-unit node fits at most 4 jobs; the big node absorbs more."""
        from repro.cluster import Cluster, FirstFitPlacement

        cluster = Cluster(n_nodes=2, specs=[tiny_server, mini_server])
        stream = [bg_request(f"b{i}") for i in range(8)]
        out = FirstFitPlacement(max_jobs_per_node=6, verify=False).place(
            cluster, stream
        )
        assert out.rejected == ()
        # The tiny node (4 units per resource) holds at most 4 jobs.
        tiny_jobs = [n for n, idx in out.placements.items() if idx == 0]
        assert len(tiny_jobs) <= 4

    def test_clite_placement_on_mixed_fleet(self, mini_server, tiny_server):
        from repro.cluster import Cluster, CLITEPlacement

        cluster = Cluster(n_nodes=3, specs=[tiny_server, mini_server, mini_server])
        stream = [lc_request("svc", 0.4), bg_request("batch")]
        out = CLITEPlacement(
            max_jobs_per_node=3, engine_config=FAST_ENGINE
        ).place(cluster, stream, seed=0)
        assert out.rejected == ()
        assert out.all_qos_met
