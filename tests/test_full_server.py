"""Coverage for the six-resource (full Table 1) server."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CLITEConfig, CLITEEngine
from repro.experiments import MixSpec, run_trial
from repro.resources import (
    ConfigurationSpace,
    DISK_BANDWIDTH,
    IsolationManager,
    MEMORY_CAPACITY,
    NETWORK_BANDWIDTH,
    full_server,
)
from repro.schedulers import PartiesPolicy
from repro.server import NodeBudget
from repro.workloads import lc_workload, p95_latency_ms


@pytest.fixture(scope="module")
def server():
    return full_server()


class TestFullServerSpace:
    def test_dimensionality(self, server):
        space = ConfigurationSpace(server, 3)
        assert space.n_dims == 18
        assert space.size() > 10**9  # the explosion Sec. 2 describes

    def test_equal_partition_valid(self, server):
        space = ConfigurationSpace(server, 4)
        space.validate(space.equal_partition())

    def test_unit_cube_roundtrip(self, server):
        space = ConfigurationSpace(server, 3)
        rng = np.random.default_rng(0)
        for _ in range(25):
            config = space.random(rng)
            assert space.from_unit_cube(space.to_unit_cube(config)) == config

    def test_isolation_covers_all_tools(self, server):
        space = ConfigurationSpace(server, 2)
        manager = IsolationManager(server)
        issued = manager.apply(space.equal_partition())
        assert len(issued) == 6
        assert {i.tool for i in issued} >= {"memory cgroups", "blkio cgroups", "qdisc"}


class TestSixResourceSensitivities:
    def test_memcached_network_sensitivity_active(self, server):
        """On the full server the netbw curve actually binds."""
        memcached = lc_workload("memcached", server)
        shares_full = {r.name: 1.0 for r in server.resources}
        shares_starved = dict(shares_full, **{NETWORK_BANDWIDTH: 0.1})
        qps = 0.5 * memcached.max_qps
        assert p95_latency_ms(memcached, qps, 5, shares_starved) > (
            p95_latency_ms(memcached, qps, 5, shares_full)
        )

    def test_xapian_disk_sensitivity_active(self, server):
        xapian = lc_workload("xapian", server)
        shares_full = {r.name: 1.0 for r in server.resources}
        shares_starved = dict(shares_full, **{DISK_BANDWIDTH: 0.1})
        qps = 0.5 * xapian.max_qps
        assert p95_latency_ms(xapian, qps, 5, shares_starved) > (
            p95_latency_ms(xapian, qps, 5, shares_full)
        )

    def test_specjbb_memcap_sensitivity_active(self, server):
        specjbb = lc_workload("specjbb", server)
        shares_full = {r.name: 1.0 for r in server.resources}
        shares_starved = dict(shares_full, **{MEMORY_CAPACITY: 0.1})
        qps = 0.5 * specjbb.max_qps
        assert p95_latency_ms(specjbb, qps, 5, shares_starved) > (
            p95_latency_ms(specjbb, qps, 5, shares_full)
        )

    def test_calibration_differs_from_default_server(self, server):
        """QoS targets are per-server: the six-resource box calibrates
        its own knees rather than reusing the three-resource ones."""
        full = lc_workload("xapian", server)
        small = lc_workload("xapian")
        assert full.max_qps == pytest.approx(small.max_qps, rel=0.2)


class TestPoliciesOnFullServer:
    def test_parties_on_six_resources(self, server):
        mix = MixSpec.of(lc=[("memcached", 0.3), ("xapian", 0.3)], bg=["canneal"])
        trial = run_trial(
            mix, PartiesPolicy(), seed=0, budget=NodeBudget(60), server=server
        )
        assert trial.result.best_config is not None
        assert trial.result.best_config.n_resources == 6

    def test_clite_engine_on_six_resources(self, server):
        mix = MixSpec.of(lc=[("masstree", 0.4)], bg=["streamcluster"])
        node = mix.build_node(server=server, seed=0)
        config = CLITEConfig(
            seed=0, max_iterations=12, post_qos_iterations=4, confirm_top=1
        )
        result = CLITEEngine(node, config).optimize()
        assert result.qos_met
        truth = node.true_performance(result.best_config)
        assert truth.all_qos_met


@given(n_jobs=st.integers(2, 5), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_full_server_random_configs_valid(n_jobs, seed):
    space = ConfigurationSpace(full_server(), n_jobs)
    rng = np.random.default_rng(seed)
    config = space.random(rng)
    space.validate(config)
    assert space.from_unit_cube(space.to_unit_cube(config)) == config
