"""Unit tests for the repro-clite command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_lc_argument_parsing(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--lc", "memcached:0.5", "--lc", "img-dnn:0.3"]
        )
        assert args.lc == [("memcached", 0.5), ("img-dnn", 0.3)]

    def test_bad_lc_format(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--lc", "memcached"])
        assert "NAME:LOAD" in capsys.readouterr().err

    def test_unknown_lc_workload(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--lc", "redis:0.5"])
        assert "unknown LC workload" in capsys.readouterr().err

    def test_out_of_range_load(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--lc", "memcached:1.5"])
        assert "load must be" in capsys.readouterr().err

    def test_unknown_bg_workload(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--bg", "x264"])
        assert "unknown BG workload" in capsys.readouterr().err

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "memcached" in out
        assert "streamcluster" in out
        assert "QoS target" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--workload", "memcached", "--stride", "15"]) == 0
        out = capsys.readouterr().out
        assert "knee:" in out
        assert "p95 (ms)" in out

    def test_region(self, capsys):
        assert main(["region", "--workload", "img-dnn", "--load", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "min llc_ways" in out

    def test_run_feasible_mix(self, capsys):
        code = main(
            [
                "run",
                "--lc",
                "memcached:0.2",
                "--bg",
                "swaptions",
                "--policy",
                "PARTIES",
                "--budget",
                "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "QoS met: True" in out
        assert "partition" in out

    def test_run_requires_jobs(self):
        with pytest.raises(SystemExit, match="at least one"):
            main(["run"])

    def test_run_unknown_policy(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["run", "--lc", "memcached:0.2", "--policy", "SPARTA"])

    def test_run_infeasible_exit_code(self, capsys):
        code = main(
            [
                "run",
                "--lc",
                "img-dnn:1.0",
                "--lc",
                "masstree:1.0",
                "--lc",
                "memcached:1.0",
                "--policy",
                "PARTIES",
                "--budget",
                "25",
            ]
        )
        assert code == 1
        del capsys

    def test_compare_small_mix(self, capsys):
        code = main(
            [
                "compare",
                "--lc",
                "memcached:0.3",
                "--bg",
                "swaptions",
                "--budget",
                "40",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for policy in ("CLITE", "PARTIES", "Heracles", "RAND+", "GENETIC", "ORACLE"):
            assert policy in out
