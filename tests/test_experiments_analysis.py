"""Unit tests for colocation sweeps, reports, traces, and variability."""

import pytest

from repro.experiments import (
    LoadGrid,
    MixSpec,
    allocation_series,
    allocation_snapshot,
    best_bg_performance_series,
    bg_performance_grid,
    first_qos_met_sample,
    format_heatmap,
    format_series,
    format_table,
    max_supported_load,
    overhead_table,
    per_job_performance,
    qos_met_series,
    run_repeats,
    trial_performance,
    variability_percent,
)
from repro.resources import default_server
from repro.schedulers import OraclePolicy, PartiesPolicy
from repro.server import NodeBudget


ORACLE = lambda seed: OraclePolicy(max_enumeration=3000)  # noqa: E731
PARTIES = lambda seed: PartiesPolicy()  # noqa: E731
BUDGET = NodeBudget(40)


class TestMaxSupportedLoad:
    def test_easy_mix_supports_something(self):
        mix = MixSpec.of(
            lc=[("img-dnn", 0.1), ("memcached", 0.1)], bg=[]
        )
        best = max_supported_load(
            mix, "memcached", ORACLE, loads=(0.1, 0.5, 0.9), budget=BUDGET
        )
        assert best is not None
        assert best >= 0.5

    def test_impossible_mix_returns_none(self):
        mix = MixSpec.of(lc=[("img-dnn", 1.0), ("masstree", 1.0), ("memcached", 0.1)])
        best = max_supported_load(
            mix, "memcached", PARTIES, loads=(0.5, 1.0), budget=BUDGET
        )
        # PARTIES cannot handle this load point at all.
        assert best is None or best <= 0.5

    def test_monotone_stop_at_first_failure(self):
        """The search never reports a load above a failing one."""
        mix = MixSpec.of(lc=[("img-dnn", 0.9), ("masstree", 0.7), ("memcached", 0.1)])
        best = max_supported_load(
            mix, "memcached", ORACLE, loads=(0.1, 0.2, 0.4), budget=BUDGET
        )
        if best is not None:
            assert best in (0.1, 0.2, 0.4)


class TestBGPerformanceGrid:
    def test_grid_shape_and_cells(self):
        mix = MixSpec.of(
            lc=[("memcached", 0.1), ("xapian", 0.1)], bg=["streamcluster"]
        )
        grid = bg_performance_grid(
            mix,
            row_job="memcached",
            col_job="xapian",
            bg_job="streamcluster",
            policy_factory=ORACLE,
            policy_name="ORACLE",
            row_loads=(0.2, 0.8),
            col_loads=(0.2, 0.8),
            budget=BUDGET,
        )
        assert len(grid.cells) == 2
        assert len(grid.cells[0]) == 2
        feasible = [v for row in grid.cells for v in row if v is not None]
        assert feasible
        assert all(0 < v <= 1 for v in feasible)

    def test_lighter_loads_leave_more_for_bg(self):
        mix = MixSpec.of(
            lc=[("memcached", 0.1), ("xapian", 0.1)], bg=["streamcluster"]
        )
        grid = bg_performance_grid(
            mix,
            "memcached",
            "xapian",
            "streamcluster",
            ORACLE,
            "ORACLE",
            row_loads=(0.1, 0.9),
            col_loads=(0.1,),
            budget=BUDGET,
        )
        light, heavy = grid.cell(0, 0), grid.cell(1, 0)
        if light is not None and heavy is not None:
            assert light >= heavy


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [None, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "X" in lines[3]
        assert "2.500" in lines[2]

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a"], [[1, 2]])

    def test_format_heatmap(self):
        grid = LoadGrid(
            row_job="a",
            col_job="b",
            row_loads=(0.1, 0.2),
            col_loads=(0.5,),
            cells=((0.3,), (None,)),
            policy="TEST",
        )
        text = format_heatmap(grid)
        assert "TEST" in text
        assert "30%" in text
        assert "X" in text

    def test_format_series(self):
        text = format_series("s", [1.0, 2.0], [0.5, None])
        assert "s" in text and "X" in text


class TestTraces:
    @pytest.fixture
    def parties_result(self):
        mix = MixSpec.of(
            lc=[("img-dnn", 0.3), ("memcached", 0.2)], bg=["fluidanimate"]
        )
        node = mix.build_node(seed=0)
        return node, PartiesPolicy().partition(node, BUDGET)

    def test_allocation_snapshot(self, parties_result):
        node, result = parties_result
        snap = allocation_snapshot(result, default_server(), node.job_names())
        assert snap.policy == "PARTIES"
        total = sum(snap.share(j, "cores") for j in node.job_names())
        assert total == pytest.approx(1.0)

    def test_allocation_series_lengths(self, parties_result):
        node, result = parties_result
        series = allocation_series(result, default_server(), job=0, resource=0)
        assert len(series) == result.samples_taken
        assert all(0 < v <= 1 for v in series)

    def test_qos_met_series(self, parties_result):
        _, result = parties_result
        series = qos_met_series(result)
        assert len(series) == result.samples_taken

    def test_best_bg_series_monotone(self, parties_result):
        _, result = parties_result
        series = best_bg_performance_series(result, "fluidanimate")
        values = [v for v in series if v is not None]
        assert values == sorted(values)

    def test_first_qos_met_sample(self, parties_result):
        _, result = parties_result
        idx = first_qos_met_sample(result)
        if idx is not None:
            assert result.trace[idx].observation.all_qos_met

    def test_per_job_performance_keys(self, parties_result):
        node, result = parties_result
        series = per_job_performance(result)
        assert set(series) == set(node.job_names())
        assert all(len(v) == result.samples_taken for v in series.values())


class TestVariability:
    def test_repeats_distinct_seeds(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)], bg=["swaptions"])
        trials = run_repeats(mix, PARTIES, n_trials=3, budget=BUDGET)
        assert len(trials) == 3
        assert len({t.seed for t in trials}) == 3

    def test_variability_of_identical_values_is_zero(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)], bg=["swaptions"])
        trials = run_repeats(mix, ORACLE, n_trials=2, budget=BUDGET)
        # ORACLE is deterministic and noise-free.
        assert variability_percent(trials) == pytest.approx(0.0, abs=1e-9)

    def test_needs_two_trials(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)], bg=["swaptions"])
        with pytest.raises(ValueError):
            run_repeats(mix, PARTIES, n_trials=1, budget=BUDGET)

    def test_trial_performance_prefers_bg(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)], bg=["swaptions"])
        trials = run_repeats(mix, PARTIES, n_trials=2, budget=BUDGET)
        assert trial_performance(trials[0]) == trials[0].mean_bg_performance


class TestOverheadTable:
    def test_rows_per_mix_policy(self):
        mixes = [MixSpec.of(lc=[("img-dnn", 0.2)], bg=["swaptions"])]
        rows = overhead_table(
            mixes,
            {"PARTIES": PARTIES, "ORACLE": ORACLE},
            seeds=(0, 1),
            budget=BUDGET,
        )
        assert len(rows) == 2
        parties_row = next(r for r in rows if r.policy == "PARTIES")
        oracle_row = next(r for r in rows if r.policy == "ORACLE")
        assert parties_row.mean_samples > 0
        assert oracle_row.mean_evaluations > parties_row.mean_evaluations
