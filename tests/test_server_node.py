"""Unit tests for the simulated co-location node."""

import math

import pytest

from repro.server import BG_ROLE, LC_ROLE, Job, Node, NodeBudget, PerformanceCounters
from repro.workloads import LoadSchedule

from conftest import make_bg, make_lc, make_node


class TestJob:
    def test_lc_job_requires_load(self):
        with pytest.raises(ValueError, match="needs a load schedule"):
            Job(make_lc())

    def test_lc_job_requires_calibration(self):
        raw = make_lc(qos_latency_ms=None, max_qps=None)
        with pytest.raises(ValueError, match="must be calibrated"):
            Job.lc(raw, 0.5)

    def test_bg_job_rejects_load(self):
        with pytest.raises(ValueError, match="do not take a load schedule"):
            Job(make_bg(), LoadSchedule.constant(0.5))

    def test_roles(self):
        assert Job.lc(make_lc(), 0.5).role == LC_ROLE
        assert Job.bg(make_bg()).role == BG_ROLE


class TestNodeConstruction:
    def test_needs_jobs(self, mini_server):
        with pytest.raises(ValueError, match="at least one job"):
            Node(mini_server, [])

    def test_unique_names_required(self, mini_server):
        jobs = [Job.lc(make_lc("a"), 0.3), Job.lc(make_lc("a"), 0.4)]
        with pytest.raises(ValueError, match="unique"):
            Node(mini_server, jobs)

    def test_positive_window_required(self, mini_server):
        with pytest.raises(ValueError, match="window"):
            Node(mini_server, [Job.bg(make_bg())], window_s=0.0)

    def test_indices(self, quiet_node):
        assert quiet_node.lc_indices == (0, 1)
        assert quiet_node.bg_indices == (2,)
        assert quiet_node.job_names() == ("lc0", "lc1", "bg0")


class TestObserve:
    def test_observation_structure(self, quiet_node):
        obs = quiet_node.observe(quiet_node.space.equal_partition())
        assert len(obs.jobs) == 3
        assert len(obs.lc_jobs) == 2
        assert len(obs.bg_jobs) == 1
        lc = obs.lc_jobs[0]
        assert lc.p95_ms is not None and lc.qos_target_ms is not None
        bg = obs.bg_jobs[0]
        assert bg.throughput_norm is not None and bg.p95_ms is None

    def test_clock_advances_per_window(self, quiet_node):
        assert quiet_node.clock_s == 0.0
        quiet_node.observe(quiet_node.space.equal_partition())
        assert quiet_node.clock_s == 2.0
        quiet_node.observe(quiet_node.space.equal_partition())
        assert quiet_node.clock_s == 4.0

    def test_history_records_everything(self, quiet_node):
        config = quiet_node.space.equal_partition()
        quiet_node.observe(config)
        quiet_node.observe(quiet_node.space.max_allocation(0))
        assert quiet_node.samples_taken == 2
        assert quiet_node.history[0].config == config

    def test_isolation_layer_sees_applies(self, quiet_node):
        quiet_node.observe(quiet_node.space.equal_partition())
        assert quiet_node.isolation.current is not None

    def test_invalid_config_rejected(self, quiet_node):
        from repro.resources import Configuration

        with pytest.raises(ValueError):
            quiet_node.observe(Configuration.from_matrix([[6, 6, 6]]))

    def test_noise_free_observation_matches_truth(self, quiet_node):
        config = quiet_node.space.equal_partition()
        truth = quiet_node.true_performance(config)
        observed = quiet_node.observe(config)
        for t, o in zip(truth.jobs, observed.jobs):
            if t.role == LC_ROLE:
                assert o.p95_ms == pytest.approx(t.p95_ms)
            else:
                assert o.throughput_norm == pytest.approx(t.throughput_norm)

    def test_noisy_observation_differs_but_close(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.4,), n_bg=1, noise=0.05, seed=3)
        config = node.space.equal_partition()
        truth = node.true_performance(config)
        observed = node.observe(config)
        lc_t, lc_o = truth.lc_jobs[0], observed.lc_jobs[0]
        assert lc_o.p95_ms != lc_t.p95_ms
        assert lc_o.p95_ms == pytest.approx(lc_t.p95_ms, rel=0.5)

    def test_true_performance_does_not_touch_state(self, quiet_node):
        quiet_node.true_performance(quiet_node.space.equal_partition())
        assert quiet_node.clock_s == 0.0
        assert quiet_node.samples_taken == 0


class TestPhysics:
    def test_max_allocation_best_for_owner(self, quiet_node):
        """An LC job's latency at max allocation beats equal partition."""
        equal = quiet_node.true_performance(quiet_node.space.equal_partition())
        maxed = quiet_node.true_performance(quiet_node.space.max_allocation(0))
        assert maxed.job("lc0").p95_ms <= equal.job("lc0").p95_ms

    def test_starved_bg_underperforms(self, quiet_node):
        starved = quiet_node.true_performance(quiet_node.space.max_allocation(0))
        fed = quiet_node.true_performance(quiet_node.space.max_allocation(2))
        assert starved.job("bg0").throughput_norm < fed.job("bg0").throughput_norm

    def test_saturation_reports_finite_overload_latency(self, mini_server):
        node = make_node(mini_server, lc_loads=(1.0,), n_bg=2)
        # The LC job at full load with a 1-unit allocation is saturated.
        truth = node.true_performance(node.space.max_allocation(1))
        latency = truth.job("lc0").p95_ms
        assert math.isfinite(latency)
        assert latency >= 1000.0 * node.window_s  # at least one window
        assert not truth.job("lc0").qos_met

    def test_overload_latency_grades_with_overload(self, mini_server):
        light = make_node(mini_server, lc_loads=(0.8,), n_bg=2)
        heavy = make_node(mini_server, lc_loads=(1.0,), n_bg=2)
        config = light.space.max_allocation(1)
        lat_light = light.true_performance(config).job("lc0").p95_ms
        lat_heavy = heavy.true_performance(config).job("lc0").p95_ms
        assert lat_heavy > lat_light

    def test_load_schedule_drives_latency(self, mini_server):
        lc = make_lc()
        schedule = LoadSchedule.steps([(0, 0.1), (10, 0.8)])
        node = Node(
            mini_server,
            [Job(lc, schedule), Job.bg(make_bg())],
            counters=PerformanceCounters(relative_std=0.0),
        )
        config = node.space.equal_partition()
        early = node.true_performance(config, at_time=0.0).job("lc").p95_ms
        late = node.true_performance(config, at_time=20.0).job("lc").p95_ms
        assert late > early

    def test_advance_moves_clock(self, quiet_node):
        quiet_node.advance(7.5)
        assert quiet_node.clock_s == 7.5
        with pytest.raises(ValueError):
            quiet_node.advance(-1.0)

    def test_reset(self, quiet_node):
        quiet_node.observe(quiet_node.space.equal_partition())
        quiet_node.reset(seed=9)
        assert quiet_node.clock_s == 0.0
        assert quiet_node.samples_taken == 0
        assert quiet_node.isolation.current is None


class TestObservationHelpers:
    def test_job_lookup(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        assert obs.job("bg0").role == BG_ROLE
        with pytest.raises(KeyError):
            obs.job("nope")

    def test_qos_ratio(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        lc = obs.lc_jobs[0]
        expected = min(1.0, lc.qos_target_ms / lc.p95_ms)
        assert lc.qos_ratio == pytest.approx(expected)

    def test_qos_ratio_rejected_for_bg(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        with pytest.raises(ValueError):
            obs.job("bg0").qos_ratio

    def test_all_qos_met_consistency(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        assert obs.all_qos_met == all(j.qos_met for j in obs.lc_jobs)


class TestNodeBudget:
    def test_valid(self):
        assert NodeBudget(10).max_samples == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            NodeBudget(0)
