"""Validate the analytic queueing formulas against discrete-event simulation.

The whole substrate stands on the closed-form M/M/1 / M/M/c results and
the tandem-quantile approximation; these tests check them against an
independent event-driven simulator.
"""

import math

import pytest

from repro.workloads import (
    erlang_c,
    mm1_mean_sojourn,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_sojourn_quantile,
)
from repro.workloads.des import SimulationResult, simulate_mmc, simulate_tandem


class TestMMCValidation:
    @pytest.mark.parametrize(
        "lam,mu,c",
        [
            (50.0, 100.0, 1),   # M/M/1 at rho=0.5
            (80.0, 100.0, 1),   # M/M/1 at rho=0.8
            (250.0, 100.0, 4),  # M/M/4 at rho=0.625
            (700.0, 100.0, 8),  # M/M/8 at rho=0.875
        ],
    )
    def test_mean_sojourn_matches_formula(self, lam, mu, c):
        sim = simulate_mmc(lam, mu, c, n_customers=80_000, seed=1)
        if c == 1:
            analytic = mm1_mean_sojourn(lam, mu)
        else:
            analytic = mmc_mean_sojourn(lam, mu, c)
        assert sim.mean == pytest.approx(analytic, rel=0.08)

    @pytest.mark.parametrize(
        "lam,mu,c",
        [
            (50.0, 100.0, 1),
            (250.0, 100.0, 4),
            (700.0, 100.0, 8),
        ],
    )
    def test_p95_matches_formula(self, lam, mu, c):
        sim = simulate_mmc(lam, mu, c, n_customers=80_000, seed=2)
        if c == 1:
            analytic = mm1_sojourn_quantile(lam, mu, 0.95)
        else:
            analytic = mmc_sojourn_quantile(lam, mu, c, 0.95)
        assert sim.quantile(0.95) == pytest.approx(analytic, rel=0.10)

    def test_utilization_matches_rho(self):
        sim = simulate_mmc(300.0, 100.0, 4, n_customers=60_000, seed=3)
        assert sim.utilization == pytest.approx(0.75, abs=0.03)

    def test_waiting_probability_matches_erlang_c(self):
        """Fraction of customers who wait ~ the Erlang-C formula."""
        lam, mu, c = 300.0, 100.0, 4
        sim = simulate_mmc(lam, mu, c, n_customers=80_000, seed=4)
        service_only = sim.sojourn_times_s
        # A customer waited iff sojourn > its service; estimate via the
        # analytic service distribution: P(T > t) comparison is noisy, so
        # use the closed-form check of the mean decomposition instead:
        # E[T] = 1/mu + C(c, a) / (c*mu - lam).
        p_wait_implied = (service_only.mean() - 1.0 / mu) * (c * mu - lam)
        assert p_wait_implied == pytest.approx(erlang_c(c, lam / mu), abs=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulate_mmc(100.0, 100.0, 1)
        with pytest.raises(ValueError):
            simulate_mmc(10.0, 100.0, 0)
        with pytest.raises(ValueError):
            simulate_mmc(10.0, 100.0, 1, n_customers=10, warmup=10)


class TestTandemValidation:
    def test_tandem_p95_close_to_engine_approximation(self):
        """The max(quantile)+mean approximation used by p95_latency_ms
        tracks the simulated tandem within modest error."""
        lam, mu_s, mu_p, c = 120.0, 200.0, 150.0, 4
        sim = simulate_tandem(lam, mu_s, mu_p, c, n_customers=80_000, seed=5)
        q_serial = mm1_sojourn_quantile(lam, mu_s, 0.95)
        q_parallel = mmc_sojourn_quantile(lam, mu_p, c, 0.95)
        m_serial = mm1_mean_sojourn(lam, mu_s)
        m_parallel = mmc_mean_sojourn(lam, mu_p, c)
        approx = max(q_serial + m_parallel, q_parallel + m_serial)
        # The approximation is designed to be slightly conservative in
        # the mixed regime and exact when one stage dominates.
        assert sim.quantile(0.95) <= approx * 1.15
        assert sim.quantile(0.95) >= approx * 0.75

    def test_tandem_dominated_by_serial_stage_near_saturation(self):
        lam, mu_s, mu_p, c = 180.0, 200.0, 400.0, 4
        sim = simulate_tandem(lam, mu_s, mu_p, c, n_customers=80_000, seed=6)
        q_serial = mm1_sojourn_quantile(lam, mu_s, 0.95)
        assert sim.quantile(0.95) == pytest.approx(
            q_serial + mmc_mean_sojourn(lam, mu_p, c), rel=0.15
        )

    def test_tandem_monotone_in_load(self):
        quantiles = []
        for lam in (50.0, 120.0, 170.0):
            sim = simulate_tandem(lam, 200.0, 150.0, 4, n_customers=30_000, seed=7)
            quantiles.append(sim.quantile(0.95))
        assert quantiles == sorted(quantiles)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulate_tandem(250.0, 200.0, 150.0, 4)  # serial-unstable
        with pytest.raises(ValueError):
            simulate_tandem(100.0, 200.0, 20.0, 4)  # parallel-unstable


class TestSimulationResult:
    def test_quantile_bounds(self):
        sim = simulate_mmc(50.0, 100.0, 1, n_customers=5_000, seed=8)
        assert sim.quantile(0.5) < sim.quantile(0.95) < sim.quantile(0.999)
        with pytest.raises(ValueError):
            sim.quantile(1.0)

    def test_sojourns_positive_and_finite(self):
        sim = simulate_mmc(50.0, 100.0, 2, n_customers=5_000, seed=9)
        assert (sim.sojourn_times_s > 0).all()
        assert all(math.isfinite(v) for v in sim.sojourn_times_s[:100])
