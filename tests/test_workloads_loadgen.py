"""Unit tests for load sweeps, knee detection, and load schedules."""

import math

import pytest

from repro.resources import default_server
from repro.workloads import (
    LoadSchedule,
    calibrate,
    capacity_qps,
    find_knee,
    isolated_shares,
    sweep_load,
)

from conftest import make_lc


class TestFindKnee:
    def test_sharp_elbow_found(self):
        x = list(range(11))
        y = [1.0] * 8 + [5.0, 20.0, 100.0]
        knee = find_knee(x, y)
        assert 7 <= knee <= 9

    def test_ignores_infinite_points(self):
        x = list(range(10))
        y = [1, 1, 1, 1, 2, 4, 10, 40, float("inf"), float("inf")]
        knee = find_knee(x, y)
        assert knee <= 7

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            find_knee([1, 2], [1, 2])

    def test_flat_curve_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            find_knee([1, 2, 3], [5.0, 5.0, 5.0])

    def test_linear_curve_knee_anywhere_valid(self):
        # A straight line has no distinguished knee; just require a
        # valid index rather than a particular one.
        knee = find_knee([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
        assert 0 <= knee <= 3


class TestSweepLoad:
    def test_sweep_shape(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        sweep = sweep_load(lc, server, points=40)
        assert len(sweep.qps) == 40
        assert len(sweep.p95_ms) == 40
        assert all(math.isfinite(v) for v in sweep.p95_ms)

    def test_latencies_monotone(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        sweep = sweep_load(lc, server, points=40)
        assert list(sweep.p95_ms) == sorted(sweep.p95_ms)

    def test_knee_below_saturation(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        sweep = sweep_load(lc, server)
        cores = server.resource("cores").units
        saturation = capacity_qps(lc, cores, isolated_shares(server))
        assert 0.3 * saturation < sweep.knee_qps < saturation

    def test_latency_ceiling_respected(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        sweep = sweep_load(lc, server, latency_ceiling=8.0)
        assert sweep.p95_ms[-1] <= 8.0 * sweep.p95_ms[0] * 1.5

    def test_rows_pairs(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        sweep = sweep_load(lc, server, points=10)
        rows = sweep.rows()
        assert len(rows) == 10
        assert rows[0] == (sweep.qps[0], sweep.p95_ms[0])

    def test_invalid_arguments(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        with pytest.raises(ValueError):
            sweep_load(lc, server, points=2)
        with pytest.raises(ValueError):
            sweep_load(lc, server, latency_ceiling=1.0)


class TestCalibrate:
    def test_calibrate_fills_targets(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        done = calibrate(lc, server)
        assert done.is_calibrated()
        assert done.qos_latency_ms > 0
        assert done.max_qps > 0

    def test_qos_slack_scales_target(self, server):
        lc = make_lc(qos_latency_ms=None, max_qps=None)
        tight = calibrate(lc, server, qos_slack=1.0)
        loose = calibrate(lc, server, qos_slack=2.0)
        assert loose.qos_latency_ms == pytest.approx(2 * tight.qos_latency_ms)
        assert loose.max_qps == pytest.approx(tight.max_qps)


class TestLoadSchedule:
    def test_constant(self):
        schedule = LoadSchedule.constant(0.4)
        assert schedule.load_at(0) == 0.4
        assert schedule.load_at(1e6) == 0.4

    def test_steps(self):
        schedule = LoadSchedule.steps([(0, 0.1), (10, 0.2), (20, 0.3)])
        assert schedule.load_at(0) == 0.1
        assert schedule.load_at(9.99) == 0.1
        assert schedule.load_at(10) == 0.2
        assert schedule.load_at(25) == 0.3

    def test_boundary_is_inclusive(self):
        schedule = LoadSchedule.steps([(0, 0.1), (5, 0.9)])
        assert schedule.load_at(5.0) == 0.9

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at t=0"):
            LoadSchedule.steps([(1, 0.1)])

    def test_strictly_increasing_starts(self):
        with pytest.raises(ValueError):
            LoadSchedule.steps([(0, 0.1), (5, 0.2), (5, 0.3)])
        with pytest.raises(ValueError):
            LoadSchedule.steps([(0, 0.1), (5, 0.2), (3, 0.3)])

    def test_negative_time_rejected(self):
        schedule = LoadSchedule.constant(0.5)
        with pytest.raises(ValueError):
            schedule.load_at(-1.0)

    def test_load_fraction_bounds(self):
        with pytest.raises(ValueError):
            LoadSchedule.steps([(0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadSchedule(())
