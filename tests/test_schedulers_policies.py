"""Unit tests for the baseline scheduling policies."""

import numpy as np
import pytest

from repro.schedulers import (
    CLITEPolicy,
    FFDPolicy,
    GeneticPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    RSMPolicy,
    RandomPlusPolicy,
)
from repro.schedulers.ffd import hadamard, two_level_design
from repro.schedulers.rsm import box_behnken_design, central_composite_design
from repro.server import Job, NodeBudget

from conftest import make_bg, make_lc, make_node


@pytest.fixture
def easy_node(mini_server):
    """2 LC at light load + 1 BG: everyone should find QoS here."""
    return make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)


BUDGET = NodeBudget(60)


class TestCLITEPolicy:
    def test_finds_qos(self, easy_node):
        result = CLITEPolicy(seed=0).partition(easy_node, BUDGET)
        assert result.qos_met
        assert result.policy == "CLITE"

    def test_budget_folds_into_engine(self, easy_node):
        result = CLITEPolicy(seed=0).partition(easy_node, NodeBudget(12))
        assert result.samples_taken <= 12


class TestPartiesPolicy:
    def test_finds_qos_on_easy_mix(self, easy_node):
        result = PartiesPolicy().partition(easy_node, BUDGET)
        assert result.qos_met
        assert result.policy == "PARTIES"

    def test_converges_and_stops_early(self, easy_node):
        result = PartiesPolicy().partition(easy_node, BUDGET)
        assert result.converged
        assert result.samples_taken < BUDGET.max_samples

    def test_starts_from_equal_partition(self, easy_node):
        result = PartiesPolicy().partition(easy_node, BUDGET)
        assert result.trace[0].config == easy_node.space.equal_partition()

    def test_moves_one_unit_at_a_time(self, easy_node):
        result = PartiesPolicy().partition(easy_node, BUDGET)
        for prev, cur in zip(result.trace, result.trace[1:]):
            diff = np.abs(cur.config.as_array() - prev.config.as_array())
            assert diff.sum() in (0, 2)  # monitoring repeat or 1 transfer

    def test_gives_up_on_impossible_mix(self, mini_server):
        from repro.server import Node, PerformanceCounters

        doomed = make_lc("doomed", qos_latency_ms=0.0001, max_qps=2000.0)
        node = Node(
            mini_server,
            [Job.lc(doomed, 0.9), Job.bg(make_bg())],
            counters=PerformanceCounters(relative_std=0.0, seed=0),
        )
        result = PartiesPolicy().partition(node, NodeBudget(30))
        assert not result.qos_met
        # Either the budget runs out or PARTIES concludes the job
        # cannot be co-located; both are give-up outcomes.
        assert result.samples_taken <= 30

    def test_invalid_stall_limit(self):
        with pytest.raises(ValueError):
            PartiesPolicy(stall_limit=0)


class TestHeraclesPolicy:
    def test_primary_lc_meets_qos(self, easy_node):
        result = HeraclesPolicy().partition(easy_node, BUDGET)
        truth = easy_node.true_performance(result.best_config)
        assert truth.job("lc0").qos_met  # the one job Heracles manages

    def test_needs_an_lc_job(self, mini_server):
        node = make_node(mini_server, lc_loads=(), n_bg=2)
        with pytest.raises(ValueError, match="at least one LC job"):
            HeraclesPolicy().partition(node, BUDGET)

    def test_cannot_manage_second_lc_at_high_load(self, mini_server):
        """The Fig. 7 claim: Heracles only guards the first LC job."""
        node = make_node(mini_server, lc_loads=(0.8, 0.8), n_bg=1, noise=0.0)
        heracles = HeraclesPolicy().partition(node, NodeBudget(60))
        truth = node.true_performance(heracles.best_config)
        clite_node = make_node(mini_server, lc_loads=(0.8, 0.8), n_bg=1, noise=0.0)
        clite = CLITEPolicy(seed=0).partition(clite_node, NodeBudget(60))
        # Heracles' primary is fine, but the mix as a whole is worse
        # off (or equal) compared to CLITE's joint optimization.
        assert truth.job("lc0").qos_met
        assert clite.qos_met or not truth.all_qos_met


class TestRandomPlus:
    def test_spends_preset_budget(self, easy_node):
        result = RandomPlusPolicy(preset_samples=20, seed=0).partition(
            easy_node, BUDGET
        )
        assert result.samples_taken == 20
        assert result.converged

    def test_budget_caps_preset(self, easy_node):
        result = RandomPlusPolicy(preset_samples=100, seed=0).partition(
            easy_node, NodeBudget(15)
        )
        assert result.samples_taken == 15

    def test_dedup_spreads_samples(self, easy_node):
        result = RandomPlusPolicy(
            preset_samples=15, min_distance=2.0, seed=0
        ).partition(easy_node, BUDGET)
        configs = [entry.config for entry in result.trace]
        assert len({c.flat() for c in configs}) == len(configs)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomPlusPolicy(preset_samples=0)
        with pytest.raises(ValueError):
            RandomPlusPolicy(min_distance=-1.0)
        with pytest.raises(ValueError):
            RandomPlusPolicy(max_draw_attempts=0)


class TestGenetic:
    def test_spends_preset_budget(self, easy_node):
        result = GeneticPolicy(preset_samples=24, seed=0).partition(
            easy_node, BUDGET
        )
        assert result.samples_taken == 24

    def test_all_configs_valid(self, easy_node):
        result = GeneticPolicy(preset_samples=30, seed=1).partition(
            easy_node, BUDGET
        )
        for entry in result.trace:
            easy_node.space.validate(entry.config)

    def test_crossover_repairs_columns(self, easy_node):
        policy = GeneticPolicy(seed=0)
        rng = np.random.default_rng(0)
        a = easy_node.space.random(rng)
        b = easy_node.space.random(rng)
        child = policy._crossover(easy_node, a, b, rng)
        easy_node.space.validate(child)

    def test_mutation_is_single_transfer(self, easy_node):
        policy = GeneticPolicy(seed=0)
        rng = np.random.default_rng(3)
        config = easy_node.space.equal_partition()
        mutated = policy._mutate(easy_node, config, rng)
        diff = np.abs(mutated.as_array() - config.as_array())
        assert diff.sum() in (0, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeneticPolicy(preset_samples=1)
        with pytest.raises(ValueError):
            GeneticPolicy(population=1)
        with pytest.raises(ValueError):
            GeneticPolicy(mutation_prob=1.5)


class TestOracle:
    def test_exhaustive_on_tiny_space(self, tiny_server):
        node = make_node(tiny_server, lc_loads=(0.3,), n_bg=1, noise=0.0)
        result = OraclePolicy(max_enumeration=10_000).partition(node, BUDGET)
        assert result.qos_met
        # Sweeps the whole lattice plus isolation baselines.
        assert result.evaluations >= node.space.size()

    def test_consumes_no_online_samples(self, easy_node):
        result = OraclePolicy(max_enumeration=5000).partition(easy_node, BUDGET)
        assert result.samples_taken == 0
        assert easy_node.samples_taken == 0

    def test_oracle_beats_or_matches_everyone(self, mini_server):
        seeds_results = []
        for factory in (
            lambda: OraclePolicy(max_enumeration=5000),
            lambda: RandomPlusPolicy(preset_samples=30, seed=0),
            lambda: PartiesPolicy(),
        ):
            node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.0)
            result = factory().partition(node, BUDGET)
            truth = (
                node.true_performance(result.best_config)
                if result.best_config
                else None
            )
            perf = truth.job("bg0").throughput_norm if truth and truth.all_qos_met else 0
            seeds_results.append(perf)
        oracle_perf = seeds_results[0]
        assert oracle_perf >= max(seeds_results[1:]) - 1e-6

    def test_stride_picked_to_fit(self, easy_node):
        policy = OraclePolicy(max_enumeration=100)
        stride = policy._pick_stride(easy_node)
        assert easy_node.space.strided_size(stride) <= 100 or stride > 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OraclePolicy(max_enumeration=0)
        with pytest.raises(ValueError):
            OraclePolicy(climb_seeds=0)


class TestDesigns:
    def test_hadamard_orthogonal(self):
        h = hadamard(8)
        assert np.allclose(h @ h.T, 8 * np.eye(8))

    def test_hadamard_bad_order(self):
        with pytest.raises(ValueError):
            hadamard(6)

    def test_two_level_design_shape(self):
        design = two_level_design(9)
        assert design.shape == (32, 9)  # 16-run PB folded over
        assert set(np.unique(design)) == {-1.0, 1.0}

    def test_fold_over_balances_columns(self):
        design = two_level_design(5)
        assert np.allclose(design.sum(axis=0), 0)

    def test_box_behnken_run_count(self):
        design = box_behnken_design(9)
        assert design.shape == (2 * 9 * 8, 9)  # 144 runs, paper ~130

    def test_central_composite_includes_axials(self):
        design = central_composite_design(4)
        axials = design[-8:]
        assert np.count_nonzero(axials) == 8

    def test_ffd_policy_runs(self, easy_node):
        result = FFDPolicy(seed=0).partition(easy_node, BUDGET)
        assert result.best_config is not None
        for entry in result.trace:
            easy_node.space.validate(entry.config)

    def test_rsm_policy_runs(self, easy_node):
        result = RSMPolicy(seed=0).partition(easy_node, NodeBudget(200))
        assert result.best_config is not None
        assert result.samples_taken <= 200

    def test_rsm_needs_more_samples_than_ffd(self, easy_node, mini_server):
        ffd_node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        rsm_node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        ffd = FFDPolicy(seed=0).partition(ffd_node, NodeBudget(500))
        rsm = RSMPolicy(seed=0).partition(rsm_node, NodeBudget(500))
        assert rsm.samples_taken > ffd.samples_taken

    def test_rsm_invalid_design(self):
        with pytest.raises(ValueError):
            RSMPolicy(design="latin-hypercube")

    def test_ffd_invalid_levels(self):
        with pytest.raises(ValueError):
            FFDPolicy(low=0.9, high=0.1)
