"""Unit tests for the BG throughput model and interference coupling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import CORES, LLC_WAYS, MEMORY_BANDWIDTH
from repro.workloads import (
    co_runner_pressure,
    exerted_pressure,
    isolated_throughput,
    normalized_throughput,
    throughput,
)

from conftest import make_bg, make_lc

FULL = {CORES: 1.0, LLC_WAYS: 1.0, MEMORY_BANDWIDTH: 1.0}


class TestThroughput:
    def test_isolated_equals_full_alloc_no_contention(self):
        bg = make_bg()
        assert isolated_throughput(bg) == pytest.approx(throughput(bg, FULL))

    def test_normalized_is_one_in_isolation(self):
        bg = make_bg()
        assert normalized_throughput(bg, FULL) == pytest.approx(1.0)

    def test_fewer_cores_less_throughput(self):
        bg = make_bg()
        half = dict(FULL, **{CORES: 0.5})
        assert throughput(bg, half) < throughput(bg, FULL)

    def test_bandwidth_sensitivity(self):
        bg = make_bg(membw_weight=1.5)
        starved = dict(FULL, **{MEMORY_BANDWIDTH: 0.2})
        assert normalized_throughput(bg, starved) < 0.7

    def test_contention_degrades(self):
        bg = make_bg()
        assert throughput(bg, FULL, contention=2.0) < throughput(bg, FULL)

    def test_missing_core_share_treated_as_full(self):
        bg = make_bg()
        assert throughput(bg, {}) == pytest.approx(isolated_throughput(bg))

    def test_normalized_bounded(self):
        bg = make_bg()
        for core in (0.1, 0.5, 1.0):
            for mem in (0.1, 0.5, 1.0):
                shares = {CORES: core, MEMORY_BANDWIDTH: mem, LLC_WAYS: 0.5}
                assert 0 < normalized_throughput(bg, shares) <= 1.0


class TestInterference:
    def test_exerted_pressure_scales_with_activity(self):
        lc = make_lc()
        assert exerted_pressure(lc, 1.0) == pytest.approx(lc.pressure)
        assert exerted_pressure(lc, 0.5) == pytest.approx(0.5 * lc.pressure)

    def test_activity_clamped(self):
        lc = make_lc()
        assert exerted_pressure(lc, -1.0) == 0.0
        assert exerted_pressure(lc, 2.0) == pytest.approx(lc.pressure)

    def test_co_runner_pressure_excludes_victim(self):
        pressures = [0.1, 0.2, 0.3]
        assert co_runner_pressure(pressures, 0) == pytest.approx(0.5)
        assert co_runner_pressure(pressures, 1) == pytest.approx(0.4)
        assert co_runner_pressure(pressures, 2) == pytest.approx(0.3)

    def test_single_job_feels_nothing(self):
        assert co_runner_pressure([0.4], 0) == 0.0

    def test_bad_victim_index(self):
        with pytest.raises(IndexError):
            co_runner_pressure([0.1], 1)


@given(
    core=st.floats(0.05, 1.0, allow_nan=False),
    llc=st.floats(0.0, 1.0, allow_nan=False),
    membw=st.floats(0.0, 1.0, allow_nan=False),
    contention=st.floats(0.0, 3.0, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_throughput_positive_and_bounded_by_isolation(core, llc, membw, contention):
    bg = make_bg()
    shares = {CORES: core, LLC_WAYS: llc, MEMORY_BANDWIDTH: membw}
    value = throughput(bg, shares, contention)
    assert 0 < value <= isolated_throughput(bg) + 1e-9


@given(
    a=st.floats(0.05, 1.0, allow_nan=False),
    b=st.floats(0.05, 1.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_throughput_monotone_in_core_share(a, b):
    bg = make_bg()
    lo, hi = sorted((a, b))
    t_lo = throughput(bg, dict(FULL, **{CORES: lo}))
    t_hi = throughput(bg, dict(FULL, **{CORES: hi}))
    assert t_lo <= t_hi + 1e-9
