"""Sharded federation: routing policies, concurrency equivalence, scale."""

from __future__ import annotations

import pytest

from conftest import make_bg, make_lc
from repro.warehouse import (
    ROUTING_POLICIES,
    ScenarioConfig,
    WarehouseFederation,
    WarehouseJob,
    home_shard,
    load_into,
    synthesize,
)


def bg_job(name):
    return WarehouseJob.bg(make_bg(name), name)


def lc_job(name, load):
    return WarehouseJob.lc(make_lc(name), load, name)


class TestConstruction:
    def test_rejects_unknown_routing(self):
        with pytest.raises(ValueError, match="unknown routing"):
            WarehouseFederation(2, 4, routing="hash-ring")

    def test_rejects_mismatched_stores(self):
        with pytest.raises(ValueError, match="stores"):
            WarehouseFederation(2, 4, stores=[None])

    def test_home_shard_is_stable_and_in_range(self):
        for name in ("a", "mc-123", "xapian-9"):
            home = home_shard(name, 3)
            assert 0 <= home < 3
            assert home == home_shard(name, 3)  # process-independent


class TestRouting:
    def test_round_robin_rotates_the_first_shard(self, mini_server):
        with WarehouseFederation(
            2, 4, routing="round-robin", spec=mini_server
        ) as fed:
            for i in range(4):
                fed.submit(bg_job(f"j{i}"), at=float(i + 1))
            fed.run_until(10.0)
            shards = [fed.placements()[f"j{i}"][0] for i in range(4)]
        assert shards == [0, 1, 0, 1]

    def test_least_loaded_balances(self, mini_server):
        with WarehouseFederation(
            2, 4, routing="least-loaded", spec=mini_server
        ) as fed:
            for i in range(4):
                fed.submit(bg_job(f"j{i}"), at=float(i + 1))
            fed.run_until(10.0)
            by_shard = [fed.shards[i].jobs_running for i in range(2)]
        assert by_shard == [2, 2]

    def test_rejection_retry_spills_past_a_full_home(self, mini_server):
        # Two jobs with the same home shard; one node of one job each.
        names = ["spill-a", "spill-b"]
        assert home_shard(names[0], 2) == home_shard(names[1], 2)
        home = home_shard(names[0], 2)
        with WarehouseFederation(
            2, 1, routing="rejection-retry", spec=mini_server,
            max_jobs_per_node=1,
        ) as fed:
            fed.submit(bg_job(names[0]), at=1.0)
            fed.submit(bg_job(names[1]), at=2.0)
            fed.run_until(3.0)
            placements = fed.placements()
        assert placements[names[0]][0] == home
        assert placements[names[1]][0] == 1 - home  # spilled

    def test_full_federation_rejects(self, mini_server):
        with WarehouseFederation(
            2, 1, spec=mini_server, max_jobs_per_node=1
        ) as fed:
            for i in range(3):
                fed.submit(bg_job(f"j{i}"), at=float(i + 1))
            status = fed.run_to_completion()
        assert status["jobs_running"] == 2
        assert status["rejections"] == 1
        rejects = [e for e in fed.routed if e.kind == "reject"]
        assert rejects[0].detail == "capacity"

    def test_duplicate_name_rejected_across_shards(self, mini_server):
        with WarehouseFederation(2, 4, spec=mini_server) as fed:
            fed.submit(bg_job("dup"), at=1.0)
            fed.submit(bg_job("dup"), at=2.0)
            fed.run_until(3.0)
            rejects = [e for e in fed.routed if e.kind == "reject"]
        assert len(rejects) == 1
        assert rejects[0].detail == "duplicate-name"

    def test_departure_routed_to_owning_shard(self, mini_server):
        with WarehouseFederation(2, 4, spec=mini_server) as fed:
            fed.submit(bg_job("a"), at=1.0)
            fed.depart("a", at=2.0)
            fed.depart("ghost", at=3.0)
            fed.run_until(4.0)
            assert fed.placements() == {}
            departs = [e for e in fed.routed if e.kind == "depart"]
        assert departs[0].job == "a" and departs[0].shard >= 0
        assert departs[1].job == "ghost" and departs[1].detail == "unknown"


def _run_scenario(events, concurrent, routing="least-loaded"):
    with WarehouseFederation(
        2,
        25,
        routing=routing,
        concurrent_probes=concurrent,
        recheck_period_s=60.0,
        seed=9,
    ) as fed:
        load_into(fed, events)
        status = fed.run_to_completion()
        return (
            fed.routed,
            [shard.timeline for shard in fed.shards],
            fed.placements(),
            status["jobs_running"],
            status["migrations"],
        )


class TestConcurrencyEquivalence:
    @pytest.mark.parametrize("routing", ROUTING_POLICIES)
    def test_serial_and_concurrent_probing_choose_identically(self, routing):
        events = synthesize(ScenarioConfig(n_jobs=40, duration_s=400.0, seed=9))
        serial = _run_scenario(events, concurrent=False, routing=routing)
        threaded = _run_scenario(events, concurrent=True, routing=routing)
        assert serial == threaded


class TestWarehouseScale:
    def test_500_nodes_2_shards_200_plus_events_deterministic(self):
        """The issue's acceptance scenario: big, busy, bit-identical."""
        config = ScenarioConfig(n_jobs=150, duration_s=900.0, seed=7)
        events = synthesize(config)
        assert len(events) >= 200
        runs = []
        for _ in range(2):
            with WarehouseFederation(
                2, 250, recheck_period_s=120.0, seed=7,
                concurrent_probes=True,
            ) as fed:
                load_into(fed, events)
                status = fed.run_to_completion()
                runs.append(
                    (
                        fed.routed,
                        [shard.timeline for shard in fed.shards],
                        fed.placements(),
                        status,
                    )
                )
        assert runs[0] == runs[1]
        routed, shard_timelines, placements, status = runs[0]
        assert status["nodes_total"] == 500
        assert status["arrivals"] == 150
        assert status["routed"] + status["rejections"] >= 150
        assert status["departures"] > 50
        assert len(routed) >= 200
        # Both shards actually took work.
        assert all(len(timeline) > 0 for timeline in shard_timelines)


class TestStatusAggregation:
    def test_sums_across_shards(self, mini_server):
        with WarehouseFederation(3, 2, spec=mini_server) as fed:
            for i in range(5):
                fed.submit(bg_job(f"j{i}"), at=float(i + 1))
            status = fed.run_to_completion()
        assert status["n_shards"] == 3
        assert status["nodes_total"] == 6
        assert status["jobs_running"] == 5
        assert len(status["shards"]) == 3
        assert sum(s["jobs_running"] for s in status["shards"]) == 5
        assert status["nodes_used"] == sum(
            s["nodes_used"] for s in status["shards"]
        )

    def test_close_is_idempotent(self, mini_server):
        fed = WarehouseFederation(
            2, 2, spec=mini_server, concurrent_probes=True
        )
        fed.close()
        fed.close()


class TestTimelineCursor:
    """Federation cursors: rolling readers collect every root and shard
    decision exactly once, matching the historical full flatten."""

    def test_rolling_cursor_matches_full_flatten(self):
        from collections import Counter

        events = synthesize(ScenarioConfig(n_jobs=40, duration_s=400.0, seed=4))
        with WarehouseFederation(3, 12, recheck_period_s=60.0, seed=4) as fed:
            load_into(fed, events)
            zero = (0,) * (len(fed.shards) + 1)
            assert fed.timeline_cursor() == zero
            collected = []
            cursor = fed.timeline_cursor()
            for t in (100.0, 200.0, 300.0):
                fed.run_until(t)
                collected.extend(fed.timeline_since(cursor))
                cursor = fed.timeline_cursor()
            fed.run_to_completion()
            collected.extend(fed.timeline_since(cursor))
            cursor = fed.timeline_cursor()
            full = fed.timeline_since(zero)
            # The zero cursor reproduces the historical flattening:
            # routed log first, then each shard's timeline in order.
            assert full == tuple(fed.routed) + tuple(
                entry for shard in fed.shards for entry in shard.timeline
            )
            # Rolling slices interleave components but drop nothing.
            assert len(collected) == len(full) > 0
            assert Counter(map(repr, collected)) == Counter(map(repr, full))
            assert fed.timeline_since(cursor) == ()
