"""repro-cost: COST-family (RPL10xx) rule behavior on the cost
fixtures, interprocedural cost closures with call chains, RPL1004
repeat semantics, the CLI report, cache coverage of the nested cost
table, and the meta-tests pinning the repo's own per-event budgets."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint
from repro.analysis.cache import LintCache, cache_key, config_digest
from repro.analysis.config import load_config
from repro.analysis.cost import cost_analysis, parse_budget
from repro.analysis.cost_cli import main as cost_main
from repro.analysis.engine import LintEngine

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = REPO_ROOT / "src" / "repro"

COST_IDS = ("RPL1001", "RPL1002", "RPL1003", "RPL1004", "RPL1005")
BAD = "lint_fixtures.cost_bad"
GOOD = "lint_fixtures.cost_good"


def bad_config(**overrides) -> LintConfig:
    base = dict(
        select=COST_IDS,
        cost_budgets=(
            f"{BAD}.BadService.handle=small",
            f"{BAD}.BadService.deep=small",
            f"{BAD}.BadService.recheck=small",
            f"{BAD}.BadService.hot_alloc=n_nodes",
            f"{BAD}.BadService.gone=small",      # stale: no such function
            f"{BAD}.BadService.quad=bogus",      # malformed expression
        ),
        cost_hot_entrypoints=(
            f"{BAD}.BadService.handle",
            f"{BAD}.BadService.hot_alloc",
            f"{BAD}.BadService.unbudgeted_hot",  # hot without a budget
        ),
        cost_collections=("Fleet.nodes=n_nodes", "Fleet.jobs=n_jobs"),
        cost_bounded=(),
        cost_small_names=(),
    )
    base.update(overrides)
    return LintConfig(**base)


def good_config(**overrides) -> LintConfig:
    base = dict(
        select=COST_IDS,
        cost_budgets=(
            f"{GOOD}.GoodService.handle=small",
            f"{GOOD}.GoodService.deep=small",
            f"{GOOD}.GoodService.probe=small",
            f"{GOOD}.GoodService.recheck=n_nodes",
            f"{GOOD}.GoodService.placement_matrix=n_jobs*n_nodes",
            f"{GOOD}.GoodService.loads_of=n_nodes",
        ),
        cost_hot_entrypoints=(
            f"{GOOD}.GoodService.handle",
            f"{GOOD}.GoodService.probe",
        ),
        cost_collections=("Fleet.nodes=n_nodes", "Fleet.jobs=n_jobs"),
        cost_bounded=("GoodService.dirty=commit-maintained dirty set",),
        cost_small_names=(),
    )
    base.update(overrides)
    return LintConfig(**base)


def lint_fixture(filename: str, config: LintConfig):
    return run_lint([FIXTURES / filename], config)


def analyse_fixture(filename: str, config: LintConfig):
    engine = LintEngine(config)
    project = engine.build_project([FIXTURES / filename])
    return cost_analysis(project, config)


def analyse_source(tmp_path, source: str, config: LintConfig):
    path = tmp_path / "mod.py"
    path.write_text(source)
    engine = LintEngine(config)
    project = engine.build_project([path])
    return cost_analysis(project, config)


def rule_ids(findings) -> list:
    return [f.rule_id for f in findings]


def key_for(analysis, entry: str) -> str:
    for key, budget in analysis.budgets.items():
        if budget.entry == entry:
            return key
    raise AssertionError(f"no budget registered for {entry}")


# ----------------------------------------------------------------------
# The fixture corpus: every rule fires on bad, stays silent on good
# ----------------------------------------------------------------------
class TestCostFixtures:
    def test_bad_fixture_triggers_every_rule(self):
        findings = lint_fixture("cost_bad.py", bad_config())
        assert sorted(set(rule_ids(findings))) == sorted(COST_IDS)

    def test_good_fixture_is_clean(self):
        findings = lint_fixture("cost_good.py", good_config())
        assert findings == [], [f.message for f in findings]

    def test_rpl1001_charges_the_direct_scan(self):
        analysis = analyse_fixture("cost_bad.py", bad_config())
        over = {hit.budget.entry for hit in analysis.budget_hits}
        assert f"{BAD}.BadService.handle" in over
        hit = next(
            h
            for h in analysis.budget_hits
            if h.budget.entry == f"{BAD}.BadService.handle"
        )
        assert "n_nodes" in hit.term.vars
        assert hit.term.chain == ()

    def test_rpl1001_charges_through_a_two_deep_chain(self):
        """The fleet scan in _scan must be billed to deep's budget with
        the callee path it was imported through."""
        analysis = analyse_fixture("cost_bad.py", bad_config())
        hit = next(
            h
            for h in analysis.budget_hits
            if h.budget.entry == f"{BAD}.BadService.deep"
        )
        assert "n_nodes" in hit.term.vars
        assert len(hit.term.chain) >= 2
        assert any("_scan" in link for link in hit.term.chain)

    def test_rpl1001_respects_a_sufficient_budget(self):
        """hot_alloc closes at O(n_nodes) under an n_nodes budget: the
        degree comparison, not the mere presence of an N term, decides."""
        analysis = analyse_fixture("cost_bad.py", bad_config())
        over = {hit.budget.entry for hit in analysis.budget_hits}
        assert f"{BAD}.BadService.hot_alloc" not in over

    def test_rpl1002_proves_the_same_family_product(self):
        analysis = analyse_fixture("cost_bad.py", bad_config())
        assert [quad.vars for quad in analysis.quads] == [
            ("n_nodes", "n_nodes")
        ]

    def test_rpl1002_leaves_cross_family_products_alone(self):
        """placement_matrix is a deliberate n_jobs x n_nodes product:
        different fleet axes never read as a quadratic."""
        analysis = analyse_fixture("cost_good.py", good_config())
        assert analysis.quads == []

    def test_rpl1003_flags_the_hot_allocation(self):
        analysis = analyse_fixture("cost_bad.py", bad_config())
        assert len(analysis.allocs) == 1
        alloc = analysis.allocs[0]
        assert alloc.bound == "n_nodes"
        assert "sorted" in alloc.what

    def test_rpl1004_counts_the_repeated_pure_call(self):
        analysis = analyse_fixture("cost_bad.py", bad_config())
        assert len(analysis.repeats) == 1
        repeat = analysis.repeats[0]
        assert "loads_of" in repeat.callee
        assert repeat.count == 2

    def test_rpl1005_reports_all_three_registry_defects(self):
        analysis = analyse_fixture("cost_bad.py", bad_config())
        details = {(hit.table, hit.detail) for hit in analysis.registry}
        assert details == {
            ("budgets", "no such function"),
            ("budgets", "unparsable budget 'bogus'"),
            ("hot-entrypoints", "hot entry has no budget"),
        }

    def test_bounded_slice_keeps_probe_small(self):
        """queue[: self.max_probe] is a bounded slice: the closed cost
        of probe must carry no N factor despite the unsized queue."""
        analysis = analyse_fixture("cost_good.py", good_config())
        key = key_for(analysis, f"{GOOD}.GoodService.probe")
        terms = analysis._cost_closure(key)
        assert all(term.degree == 0 for term in terms)

    def test_bounded_attr_keeps_the_drain_small(self):
        """sorted(self.dirty) under the bounded allowlist closes at
        degree zero; dropping the allowlist entry re-exposes nothing
        because dirty has no declared size either way."""
        analysis = analyse_fixture("cost_good.py", good_config())
        key = key_for(analysis, f"{GOOD}.GoodService.handle")
        terms = analysis._cost_closure(key)
        assert all(term.degree == 0 for term in terms)


# ----------------------------------------------------------------------
# Budget grammar
# ----------------------------------------------------------------------
class TestBudgetGrammar:
    def test_licensed_degrees(self):
        assert parse_budget("small") == 0
        assert parse_budget("const") == 0
        assert parse_budget("n_nodes") == 1
        assert parse_budget("small*n_jobs") == 1
        assert parse_budget("n_shards*n_jobs") == 2

    def test_malformed_expressions(self):
        assert parse_budget("") is None
        assert parse_budget("bogus") is None
        assert parse_budget("n_nodes*") is None
        assert parse_budget("n_nodes^2") is None


# ----------------------------------------------------------------------
# RPL1004 repeat semantics on focused snippets
# ----------------------------------------------------------------------
def repeat_source(body: str) -> str:
    return (
        "class Store:\n"
        "    def __init__(self):\n"
        "        self.items = []\n"
        "\n"
        "    def total(self, t):\n"
        "        acc = 0.0\n"
        "        for item in self.items:\n"
        "            acc += item + t\n"
        "        return acc\n"
        "\n"
        "\n"
        "class Svc:\n"
        "    def __init__(self):\n"
        "        self.store = Store()\n"
        "        self.mirror = Store()\n"
        "\n"
        "    def tick(self, t):\n" + body
    )


REPEAT_CONFIG = dict(
    select=COST_IDS,
    cost_budgets=("mod.Svc.tick=n_jobs",),
    cost_hot_entrypoints=(),
    cost_collections=("Store.items=n_jobs",),
    cost_bounded=(),
    cost_small_names=(),
)


class TestRepeatSemantics:
    def _repeats(self, tmp_path, body: str):
        analysis = analyse_source(
            tmp_path, repeat_source(body), LintConfig(**REPEAT_CONFIG)
        )
        return analysis.repeats

    def test_straight_line_repeat_is_flagged(self, tmp_path):
        body = (
            "        a = self.store.total(t)\n"
            "        b = self.store.total(t)\n"
            "        return a + b\n"
        )
        repeats = self._repeats(tmp_path, body)
        assert len(repeats) == 1
        assert repeats[0].count == 2

    def test_same_loop_iteration_repeat_is_flagged(self, tmp_path):
        body = (
            "        out = []\n"
            "        for step in (1, 2, 3):\n"
            "            out.append(self.store.total(t) "
            "+ self.store.total(t))\n"
            "        return out\n"
        )
        assert len(self._repeats(tmp_path, body)) == 1

    def test_exclusive_branch_arms_do_not_pair(self, tmp_path):
        body = (
            "        if t > 0:\n"
            "            return self.store.total(t)\n"
            "        return self.store.total(t)\n"
        )
        assert self._repeats(tmp_path, body) == []

    def test_different_arguments_do_not_pair(self, tmp_path):
        body = (
            "        return self.store.total(t) "
            "+ self.store.total(t + 1.0)\n"
        )
        assert self._repeats(tmp_path, body) == []

    def test_different_receivers_do_not_pair(self, tmp_path):
        body = (
            "        return self.store.total(t) "
            "+ self.mirror.total(t)\n"
        )
        assert self._repeats(tmp_path, body) == []

    def test_unbudgeted_frames_are_out_of_scope(self, tmp_path):
        """The same repetition without a budget on tick stays silent:
        RPL1004 is gated to the declared-budget registry."""
        body = (
            "        a = self.store.total(t)\n"
            "        b = self.store.total(t)\n"
            "        return a + b\n"
        )
        config = dict(REPEAT_CONFIG, cost_budgets=())
        analysis = analyse_source(
            tmp_path, repeat_source(body), LintConfig(**config)
        )
        assert analysis.repeats == []


# ----------------------------------------------------------------------
# repro-cost CLI
# ----------------------------------------------------------------------
COST_PROJECT_TABLE = (
    "[tool.repro-lint.cost]\n"
    'hot-entrypoints = ["cost_bad.BadService.handle"]\n'
    "[tool.repro-lint.cost.budgets]\n"
    '"cost_bad.BadService.handle" = "small"\n'
    "[tool.repro-lint.cost.collections]\n"
    '"Fleet.nodes" = "n_nodes"\n'
    '"Fleet.jobs" = "n_jobs"\n'
)


def write_cost_project(tmp_path) -> Path:
    shutil.copy(FIXTURES / "cost_bad.py", tmp_path / "cost_bad.py")
    (tmp_path / "pyproject.toml").write_text(COST_PROJECT_TABLE)
    return tmp_path


class TestCostCLI:
    def test_text_report_on_package_is_clean(self, capsys):
        code = cost_main([str(PACKAGE), "--check"])
        out = capsys.readouterr()
        assert code == 0, out.err
        assert "cost budgets" in out.out
        assert "_find_target" in out.out
        assert "OVER" not in out.out
        assert "every registry entry resolves and is budgeted" in out.out

    def test_check_fails_on_bad_tree(self, tmp_path, capsys):
        tree = write_cost_project(tmp_path)
        code = cost_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "BUDGET VIOLATIONS" in out.out
        assert "OVER" in out.out
        assert "violation(s) found" in out.err

    def test_json_report_schema(self, tmp_path, capsys):
        tree = write_cost_project(tmp_path)
        code = cost_main([str(tree), "--format", "json"])
        out = capsys.readouterr()
        assert code == 0
        payload = json.loads(out.out)
        assert set(payload) >= {
            "budgets",
            "budget_violations",
            "hot_entries",
            "hot_reachable_count",
            "quadratics",
            "hot_allocations",
            "repeats",
            "stale_registry",
            "violations",
        }
        assert payload["violations"] >= 2
        handle = next(
            row
            for row in payload["budgets"]
            if row["entry"] == "cost_bad.BadService.handle"
        )
        assert handle["ok"] is False
        assert handle["hot"] is True

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cost_main([]) == 2

    def test_malformed_config_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def fn():\n    return 1\n")
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint.cost]\nbudgetss = []\n"
        )
        code = cost_main([str(tmp_path)])
        out = capsys.readouterr()
        assert code == 2
        assert "repro-cost:" in out.err


# ----------------------------------------------------------------------
# Config + cache: the nested cost table
# ----------------------------------------------------------------------
COST_TABLE = (
    "[tool.repro-lint.cost]\n"
    'hot-entrypoints = ["pkg.mod.fn"]\n'
    "[tool.repro-lint.cost.budgets]\n"
    '"pkg.mod.fn" = "small"\n'
)


class TestCostConfigAndCache:
    def test_nested_table_parses_into_cost_fields(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(COST_TABLE)
        config = load_config(tmp_path)
        assert config.cost_hot_entrypoints == ("pkg.mod.fn",)
        assert config.cost_budgets == ("pkg.mod.fn=small",)
        # Untouched cost fields keep their defaults.
        assert "Cluster.nodes=n_nodes" in config.cost_collections

    def test_unknown_cost_subkey_is_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint.cost]\nbudgetss = []\n"
        )
        with pytest.raises(ValueError, match="repro-lint.cost"):
            load_config(tmp_path)

    def test_nested_table_edit_changes_config_digest(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(COST_TABLE)
        before = config_digest(load_config(tmp_path))
        pyproject.write_text(COST_TABLE.replace('"small"', '"n_nodes"'))
        after = config_digest(load_config(tmp_path))
        assert before != after

    def test_budget_edit_invalidates_cached_run(self, tmp_path):
        """End-to-end: a cached clean verdict must not survive an edit
        to [tool.repro-lint.cost] budgets."""
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(COST_TABLE)
        target = tmp_path / "mod.py"
        target.write_text("def fn():\n    return 1\n")
        cache = LintCache(tmp_path / "cache.json")
        key = cache_key([target], load_config(tmp_path))
        cache.store(key, [])
        assert cache.lookup(key) == []
        pyproject.write_text(COST_TABLE.replace('"small"', '"n_nodes"'))
        new_key = cache_key([target], load_config(tmp_path))
        assert cache.lookup(new_key) is None


# ----------------------------------------------------------------------
# Meta: the repo's own per-event budgets, pinned
# ----------------------------------------------------------------------
class TestRepoCostBudgets:
    """Mirrors repro-lint-src-is-clean for the COST family, plus the
    acceptance mutations that must break the gate: re-introducing a
    full fleet scan on either per-event path flips repro-cost to
    exit 1."""

    def test_package_tree_is_cost_clean(self):
        findings = run_lint([PACKAGE], LintConfig(select=COST_IDS))
        assert findings == [], [f.message for f in findings]

    def _mutated_package(self, tmp_path, filename, old, new):
        tree = tmp_path / "repro"
        shutil.copytree(PACKAGE, tree)
        target = tree / filename
        source = target.read_text()
        assert old in source, f"mutation anchor missing in {filename}"
        target.write_text(source.replace(old, new, 1))
        return tree

    def test_full_scan_in_find_target_fails_the_check(
        self, tmp_path, capsys
    ):
        """Acceptance: replacing the density-bucket probe walk with a
        whole-cluster scan must blow the O(small) budget on
        _find_target."""
        tree = self._mutated_package(
            tmp_path,
            "warehouse/service.py",
            "for index in self._by_density[density]:",
            "for index in [node_state.index "
            "for node_state in self.cluster.nodes]:",
        )
        code = cost_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "_find_target" in out.out
        assert "OVER" in out.out

    def test_full_scan_in_recheck_fails_the_check(self, tmp_path, capsys):
        """Acceptance: rechecking every cluster node instead of the
        volatile/dirty candidate set must blow the O(small) budget on
        _on_recheck."""
        tree = self._mutated_package(
            tmp_path,
            "warehouse/service.py",
            "candidates = sorted("
            "set(self._volatile_nodes) | self._recheck_dirty)",
            "candidates = [node_state.index "
            "for node_state in self.cluster.nodes]",
        )
        code = cost_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "_on_recheck" in out.out
