"""The example scripts must at least import and expose a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_imports_and_defines_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.name} has no main()"
    assert (module.__doc__ or "").strip(), f"{path.name} has no module docstring"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "policy_comparison",
        "dynamic_load",
        "custom_workload",
        "cluster_scheduling",
    } <= names
