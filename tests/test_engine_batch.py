"""Batched acquisition + concurrent observation (``batch_k``).

The contract under test: ``batch_k=1`` (the default) is the paper's
sequential Algorithm 1, bit for bit; ``batch_k > 1`` trades some
sample-efficiency fidelity for wall-clock but must stay seed-
deterministic regardless of thread-pool width or worker completion
order.
"""

from __future__ import annotations

import pytest

from conftest import make_node
from repro.core import CLITEConfig, CLITEEngine
from repro.server import ObservationService
from repro.telemetry import Telemetry
from test_core_termination_engine import small_engine_config


def trajectory(mini_server, *, seed=0, telemetry=None, **overrides):
    node = make_node(
        mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01, seed=seed
    )
    config = small_engine_config(seed=seed, telemetry=telemetry, **overrides)
    result = CLITEEngine(node, config).optimize()
    return [
        (
            sample.config.as_array().tobytes(),
            sample.score,
            sample.expected_improvement,
        )
        for sample in result.samples
    ]


class TestBatchConfigValidation:
    def test_batch_k_must_be_positive(self, mini_server):
        node = make_node(mini_server)
        with pytest.raises(ValueError, match="batch_k"):
            CLITEEngine(node, small_engine_config(batch_k=0))

    def test_worker_count_must_be_positive(self, quiet_node):
        with pytest.raises(ValueError, match="workers"):
            ObservationService(quiet_node, workers=0)


class TestSequentialFidelity:
    def test_explicit_batch_k_1_matches_default(self, mini_server):
        """batch_k=1 routes through the service yet changes nothing."""
        assert trajectory(mini_server) == trajectory(mini_server, batch_k=1)

    def test_parallel_flag_inert_at_k_1(self, mini_server):
        """parallel_observe cannot touch single-candidate batches."""
        assert trajectory(mini_server, batch_k=1) == trajectory(
            mini_server, batch_k=1, parallel_observe=True, observe_workers=4
        )


class TestBatchDeterminism:
    def test_same_seed_same_trajectory(self, mini_server):
        kwargs = dict(batch_k=4, parallel_observe=True)
        assert trajectory(mini_server, **kwargs) == trajectory(
            mini_server, **kwargs
        )

    def test_worker_count_is_invisible(self, mini_server):
        """2-wide and 8-wide pools finish primes in different orders;
        the trajectory must not notice."""
        narrow = trajectory(
            mini_server, batch_k=4, parallel_observe=True, observe_workers=2
        )
        wide = trajectory(
            mini_server, batch_k=4, parallel_observe=True, observe_workers=8
        )
        assert narrow == wide

    def test_serial_priming_matches_parallel(self, mini_server):
        """parallel_observe only moves physics onto threads — the
        observations themselves are identical to inline priming."""
        inline = trajectory(mini_server, batch_k=4, parallel_observe=False)
        threaded = trajectory(mini_server, batch_k=4, parallel_observe=True)
        assert inline == threaded

    def test_different_seeds_differ(self, mini_server):
        assert trajectory(
            mini_server, seed=0, batch_k=4, parallel_observe=True
        ) != trajectory(mini_server, seed=1, batch_k=4, parallel_observe=True)


class TestBatchBudget:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_max_samples_respected(self, mini_server, k):
        """A batch never overshoots the total observation budget, even
        when the budget is not a multiple of k."""
        node = make_node(
            mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01
        )
        config = small_engine_config(
            max_samples=11,
            max_iterations=50,
            post_qos_iterations=10**6,
            batch_k=k,
        )
        result = CLITEEngine(node, config).optimize()
        assert len(result.samples) <= 11

    def test_equal_budget_same_observation_count(self, mini_server):
        """With EI termination disabled, every k exhausts the budget."""
        counts = set()
        for k in (1, 4):
            node = make_node(
                mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01
            )
            config = small_engine_config(
                max_samples=16,
                max_iterations=10**6,
                post_qos_iterations=10**6,
                batch_k=k,
            )
            counts.add(len(CLITEEngine(node, config).optimize().samples))
        assert len(counts) == 1


class TestBatchTelemetry:
    def test_batch_counters(self, mini_server):
        telemetry = Telemetry.enabled()
        node = make_node(
            mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01
        )
        config = small_engine_config(
            telemetry=telemetry, batch_k=4, parallel_observe=True
        )
        CLITEEngine(node, config).optimize()
        snapshot = telemetry.metrics.snapshot()
        batches = snapshot["observe.batch.batches"]["value"]
        configs = snapshot["observe.batch.configs"]["value"]
        assert batches > 0
        assert configs >= batches
