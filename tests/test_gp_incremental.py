"""Incremental GP conditioning must agree with batch refits.

The rank-1 Cholesky extension in :meth:`GaussianProcess.add_sample` is a
pure optimization: whenever a from-scratch ``fit`` on the same data
would pick the same lengthscale and jitter, the two posteriors must be
numerically indistinguishable (1e-8 here, far tighter than anything the
engine's scores resolve).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GaussianProcess, Matern52

ATOL = 1e-8


def _query_grid(d: int, n: int = 40) -> np.ndarray:
    return np.random.default_rng(12345).random((n, d))


def _assert_same_posterior(incremental, batch, xq):
    # 1e-8 both absolutely and relatively: ill-conditioned cases can
    # inflate posterior means far beyond the targets' scale, where only
    # the relative term is meaningful.
    mean_inc, std_inc = incremental.predict(xq)
    mean_bat, std_bat = batch.predict(xq)
    np.testing.assert_allclose(mean_inc, mean_bat, atol=ATOL, rtol=ATOL)
    np.testing.assert_allclose(std_inc, std_bat, atol=ATOL, rtol=ATOL)


def _grow_incrementally(gp, x, y, warm=3):
    gp.fit(x[:warm], y[:warm])
    for i in range(warm, len(x)):
        gp.add_sample(x[i], y[i])
    return gp


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(5, 30),
    d=st.integers(1, 6),
    noise=st.sampled_from([1e-6, 1e-3, 0.1]),
)
@settings(max_examples=40, deadline=None)
def test_incremental_matches_batch_fixed_kernel(seed, n, d, noise):
    """With the kernel frozen, add_sample ≡ fit for any sample stream.

    Noise is kept positive: at exactly zero jitter the Gram matrix of a
    dense 1-D cloud is ill-conditioned enough that *any* two solve
    orders disagree beyond 1e-8 — the zero-noise regime is exercised by
    the jitter-escalation tests below instead.
    """
    rng = np.random.default_rng(seed)
    x = rng.random((n, d))
    y = rng.normal(size=n)
    kwargs = dict(
        kernel=Matern52(lengthscale=0.5), noise=noise, adapt_lengthscale=False
    )
    incremental = _grow_incrementally(GaussianProcess(**kwargs), x, y)
    batch = GaussianProcess(**kwargs).fit(x, y)
    assert incremental.jitter == batch.jitter
    _assert_same_posterior(incremental, batch, _query_grid(d))


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(5, 25))
@settings(max_examples=25, deadline=None)
def test_incremental_matches_batch_adaptive_rtol_zero(seed, n):
    """lengthscale_rtol=0 forces a refit on every add: exact parity with
    the pre-incremental behavior, adaptive lengthscale included."""
    rng = np.random.default_rng(seed)
    d = 3
    x = rng.random((n, d))
    y = rng.normal(size=n)
    incremental = _grow_incrementally(
        GaussianProcess(lengthscale_rtol=0.0), x, y
    )
    batch = GaussianProcess().fit(x, y)
    assert incremental.kernel.lengthscale == batch.kernel.lengthscale
    _assert_same_posterior(incremental, batch, _query_grid(d))


def test_incremental_matches_batch_after_jitter_escalation():
    """Duplicated points at zero noise force the jitter-escalation path;
    incremental and batch must land on the same jitter and posterior."""
    rng = np.random.default_rng(7)
    d = 2
    base = rng.random((6, d))
    x = np.vstack([base, base])  # exact duplicates: singular Gram at jitter 0
    y = np.concatenate([rng.normal(size=6), rng.normal(size=6)])
    kwargs = dict(
        kernel=Matern52(lengthscale=0.5), noise=0.0, adapt_lengthscale=False
    )
    incremental = _grow_incrementally(GaussianProcess(**kwargs), x, y)
    batch = GaussianProcess(**kwargs).fit(x, y)
    assert incremental.jitter > 0.0
    assert incremental.jitter == batch.jitter
    _assert_same_posterior(incremental, batch, _query_grid(d))


def test_duplicate_add_falls_back_to_refactor():
    """Adding an exact duplicate with zero noise hits the tiny-pivot
    fallback and still produces a finite, batch-identical posterior."""
    rng = np.random.default_rng(11)
    x = rng.random((5, 3))
    y = rng.normal(size=5)
    kwargs = dict(
        kernel=Matern52(lengthscale=0.5), noise=0.0, adapt_lengthscale=False
    )
    gp = GaussianProcess(**kwargs).fit(x, y)
    gp.add_sample(x[2], y[2] + 0.01)
    batch = GaussianProcess(**kwargs).fit(
        np.vstack([x, x[2]]), np.append(y, y[2] + 0.01)
    )
    assert np.isfinite(gp.predict(_query_grid(3))[0]).all()
    _assert_same_posterior(gp, batch, _query_grid(3))


def test_add_sample_on_unfitted_gp_fits():
    gp = GaussianProcess()
    gp.add_sample(np.array([0.3, 0.7]), 1.5)
    assert gp.is_fitted
    assert gp.n_samples == 1
    mean, _ = gp.predict(np.array([[0.3, 0.7]]))
    assert mean[0] == pytest.approx(1.5, abs=0.05)


def test_add_sample_counts_and_validation():
    gp = GaussianProcess().fit(np.random.default_rng(0).random((4, 2)), np.arange(4.0))
    gp.add_sample(np.array([0.5, 0.5]), 2.0)
    assert gp.n_samples == 5
    with pytest.raises(ValueError, match="finite"):
        gp.add_sample(np.array([np.nan, 0.5]), 1.0)
    with pytest.raises(ValueError, match="dim"):
        gp.add_sample(np.array([0.1, 0.2, 0.3]), 1.0)


def test_lengthscale_drift_triggers_full_refit():
    """A point far outside the old cloud shifts the median-distance
    heuristic; add_sample must refit rather than keep the stale kernel."""
    rng = np.random.default_rng(3)
    x = 0.01 * rng.random((8, 2))  # tight cluster: tiny lengthscale
    y = rng.normal(size=8)
    gp = GaussianProcess().fit(x, y)
    before = gp.kernel.lengthscale
    gp.add_sample(np.array([50.0, 50.0]), 0.0)
    assert gp.kernel.lengthscale != before
    batch = GaussianProcess().fit(
        np.vstack([x, [[50.0, 50.0]]]), np.append(y, 0.0)
    )
    assert gp.kernel.lengthscale == batch.kernel.lengthscale
    _assert_same_posterior(gp, batch, _query_grid(2))
