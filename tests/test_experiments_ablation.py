"""Unit tests for the ablation-sweep API."""

import pytest

from repro.core import CLITEConfig, RBF
from repro.experiments import MixSpec, run_ablation, standard_variants
from repro.server import NodeBudget


FAST = CLITEConfig(
    max_iterations=8,
    ei_min_iterations=2,
    post_qos_iterations=2,
    refine_budget=4,
    confirm_top=1,
    n_restarts=3,
)


class TestStandardVariants:
    def test_all_design_choices_present(self):
        variants = standard_variants()
        assert set(variants) == {
            "full CLITE",
            "RBF kernel",
            "PI acquisition",
            "UCB acquisition",
            "random bootstrap",
            "no dropout",
            "no constrained execution",
            "no refinement",
        }

    def test_base_config_propagates(self):
        variants = standard_variants(FAST)
        assert variants["full CLITE"].max_iterations == 8
        assert variants["no refinement"].refine_budget == 0
        assert isinstance(variants["RBF kernel"].kernel, RBF)
        assert not variants["random bootstrap"].informed_bootstrap


class TestRunAblation:
    @pytest.fixture
    def mix(self):
        return MixSpec.of(lc=[("memcached", 0.3)], bg=["swaptions"])

    def test_outcomes_ordered_and_aggregated(self, mix):
        variants = {
            "full CLITE": FAST,
            "no refinement": standard_variants(FAST)["no refinement"],
        }
        outcomes = run_ablation(
            variants, [mix], seeds=(0, 1), budget=NodeBudget(40)
        )
        assert [o.variant for o in outcomes] == ["full CLITE", "no refinement"]
        for outcome in outcomes:
            assert 0.0 <= outcome.qos_rate <= 1.0
            assert 0.0 <= outcome.mean_performance <= 1.0
            assert outcome.mean_samples > 0

    def test_easy_mix_meets_qos_in_all_variants(self, mix):
        outcomes = run_ablation(
            {"full CLITE": FAST}, [mix], seeds=(0,), budget=NodeBudget(40)
        )
        assert outcomes[0].qos_rate == 1.0
        assert outcomes[0].mean_performance > 0

    def test_validation(self, mix):
        with pytest.raises(ValueError, match="variant"):
            run_ablation({}, [mix])
        with pytest.raises(ValueError, match="mix"):
            run_ablation({"a": FAST}, [])
        with pytest.raises(ValueError, match="seed"):
            run_ablation({"a": FAST}, [mix], seeds=())
