"""Seed-determinism regression: the RPL101 fixes must make identical
runs bit-identical, and components must refuse ambient entropy."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_node
from repro.core import CLITEEngine
from repro.core.dropout import DropoutCopy
from repro.core.optimizer import AcquisitionOptimizer
from repro.core.rng import resolve_rng
from repro.telemetry import Telemetry
from test_core_termination_engine import small_engine_config


class TestResolveRng:
    def test_none_is_refused_loudly(self):
        with pytest.raises(ValueError, match="CLITEConfig.seed"):
            resolve_rng(None, owner="TestComponent")

    def test_owner_named_in_error(self):
        with pytest.raises(ValueError, match="TestComponent"):
            resolve_rng(None, owner="TestComponent")

    def test_generator_passes_through_unwrapped(self):
        gen = np.random.default_rng(3)
        assert resolve_rng(gen, owner="t") is gen

    def test_int_seed_builds_equivalent_generator(self):
        a = resolve_rng(7, owner="t").random(5)
        b = np.random.default_rng(7).random(5)
        assert (a == b).all()

    def test_numpy_integer_seed_accepted(self):
        resolve_rng(np.int64(7), owner="t")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="Generator or int"):
            resolve_rng("seed", owner="t")


class TestComponentsRequireRng:
    """The two unseeded-fallback bugs must stay fixed (RPL101)."""

    def test_dropout_copy_refuses_missing_rng(self):
        with pytest.raises(ValueError, match="DropoutCopy"):
            DropoutCopy()

    def test_dropout_copy_accepts_seed(self):
        DropoutCopy(rng=0)

    def test_acquisition_optimizer_refuses_missing_rng(self, quiet_node):
        with pytest.raises(ValueError, match="AcquisitionOptimizer"):
            AcquisitionOptimizer(quiet_node.space)

    def test_acquisition_optimizer_accepts_seed(self, quiet_node):
        AcquisitionOptimizer(quiet_node.space, rng=0)


def run_trajectory(mini_server, seed, telemetry=None):
    node = make_node(
        mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01, seed=seed
    )
    config = small_engine_config(seed=seed, telemetry=telemetry)
    result = CLITEEngine(node, config).optimize()
    return [
        (
            sample.config.as_array().tobytes(),
            sample.score,
            sample.expected_improvement,
        )
        for sample in result.samples
    ]


class TestBitIdenticalRuns:
    def test_same_seed_same_trajectory(self, mini_server):
        """Two runs with one seed agree on every sample, bit for bit."""
        first = run_trajectory(mini_server, seed=11)
        second = run_trajectory(mini_server, seed=11)
        assert first == second

    def test_different_seed_diverges(self, mini_server):
        """The seed actually steers the search (guards against a
        constant-trajectory false pass above)."""
        first = run_trajectory(mini_server, seed=11)
        second = run_trajectory(mini_server, seed=12)
        assert first != second

    def test_telemetry_does_not_perturb_the_trajectory(self, mini_server):
        """Tracing draws no RNG and reads no wall clock, so enabling it
        must leave the same-seed trajectory bit-identical."""
        plain = run_trajectory(mini_server, seed=11)
        traced = run_trajectory(
            mini_server, seed=11, telemetry=Telemetry.enabled()
        )
        assert plain == traced
