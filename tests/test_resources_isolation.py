"""Unit tests for the simulated isolation-tool layer."""

import pytest

from repro.resources import (
    Configuration,
    ConfigurationSpace,
    IsolationManager,
    default_server,
)


@pytest.fixture
def manager():
    return IsolationManager(default_server())


@pytest.fixture
def space():
    return ConfigurationSpace(default_server(), 2)


class TestIsolationManager:
    def test_initially_no_partition(self, manager):
        assert manager.current is None
        assert manager.invocations == []
        assert manager.total_enforcement_seconds == 0.0

    def test_apply_invokes_every_tool_once(self, manager, space):
        issued = manager.apply(space.equal_partition())
        assert len(issued) == 3
        assert {i.tool for i in issued} == {"taskset", "Intel CAT", "Intel MBA"}

    def test_apply_records_current(self, manager, space):
        config = space.equal_partition()
        manager.apply(config)
        assert manager.current == config

    def test_reapply_same_config_is_noop(self, manager, space):
        config = space.equal_partition()
        manager.apply(config)
        issued = manager.apply(config)
        assert issued == []
        assert len(manager.invocations) == 3

    def test_partial_change_only_touches_changed_resource(self, manager, space):
        config = space.equal_partition()
        manager.apply(config)
        moved = config.with_transfer(0, donor=0, receiver=1)  # cores only
        issued = manager.apply(moved)
        assert len(issued) == 1
        assert issued[0].resource == "cores"

    def test_enforcement_time_accumulates(self, manager, space):
        config = space.equal_partition()
        manager.apply(config)
        manager.apply(config.with_transfer(0, donor=0, receiver=1))
        assert manager.total_enforcement_seconds == pytest.approx(0.2)

    def test_noop_apply_costs_nothing(self, manager, space):
        config = space.equal_partition()
        manager.apply(config)
        manager.apply(config)
        assert manager.total_enforcement_seconds == pytest.approx(0.1)

    def test_invalid_config_rejected(self, manager):
        bad = Configuration.from_matrix([[10, 11, 10], [10, 11, 10]])
        with pytest.raises(ValueError):
            manager.apply(bad)
        assert manager.current is None

    def test_allocation_mapping(self, manager, space):
        issued = manager.apply(space.max_allocation(0))
        cores = next(i for i in issued if i.resource == "cores")
        assert cores.allocation == {0: 9, 1: 1}

    def test_command_line_rendering(self, manager, space):
        issued = manager.apply(space.equal_partition())
        line = issued[0].command_line()
        assert "taskset" in line
        assert "job0=5" in line

    def test_reset(self, manager, space):
        manager.apply(space.equal_partition())
        manager.reset()
        assert manager.current is None
        assert manager.invocations == []
        assert manager.total_enforcement_seconds == 0.0

    def test_job_count_change_reissues_all(self, manager, space):
        manager.apply(space.equal_partition())
        three = ConfigurationSpace(default_server(), 3)
        issued = manager.apply(three.equal_partition())
        assert len(issued) == 3
