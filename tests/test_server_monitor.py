"""Unit tests for the post-convergence QoS monitor."""

import pytest

from repro.server import Job, Node, PerformanceCounters, QoSMonitor, Trigger
from repro.workloads import LoadSchedule

from conftest import make_bg, make_lc


def build_node(mini_server, schedule, noise=0.0):
    jobs = [Job(make_lc("lc0"), schedule), Job.bg(make_bg("bg0"))]
    return Node(
        mini_server,
        jobs,
        counters=PerformanceCounters(relative_std=noise, seed=0),
    )


class TestQoSMonitor:
    def test_first_check_arms(self, mini_server):
        node = build_node(mini_server, LoadSchedule.constant(0.3))
        monitor = QoSMonitor(node)
        report = monitor.check(node.space.equal_partition())
        assert report.trigger is Trigger.NONE
        assert not report.reinvoke

    def test_steady_state_no_trigger(self, mini_server):
        node = build_node(mini_server, LoadSchedule.constant(0.3))
        monitor = QoSMonitor(node)
        config = node.space.equal_partition()
        for _ in range(5):
            assert monitor.check(config).trigger is Trigger.NONE

    def test_load_change_triggers(self, mini_server):
        schedule = LoadSchedule.steps([(0, 0.2), (6, 0.5)])
        node = build_node(mini_server, schedule)
        monitor = QoSMonitor(node, load_change_threshold=0.05)
        config = node.space.equal_partition()
        triggers = [monitor.check(config).trigger for _ in range(5)]
        assert Trigger.LOAD_CHANGE in triggers

    def test_small_load_change_ignored(self, mini_server):
        schedule = LoadSchedule.steps([(0, 0.2), (6, 0.22)])
        node = build_node(mini_server, schedule)
        monitor = QoSMonitor(node, load_change_threshold=0.05)
        config = node.space.equal_partition()
        triggers = [monitor.check(config).trigger for _ in range(5)]
        assert all(t is Trigger.NONE for t in triggers)

    def test_qos_violation_needs_patience(self, mini_server):
        node = build_node(mini_server, LoadSchedule.constant(0.9))
        monitor = QoSMonitor(node, violation_patience=2)
        config = node.space.max_allocation(1)  # starves the LC job
        first = monitor.check(config)
        second = monitor.check(config)
        third = monitor.check(config)
        assert first.trigger is Trigger.NONE  # arming window
        assert second.trigger is Trigger.NONE  # patience 1/2
        assert third.trigger is Trigger.QOS_VIOLATION

    def test_violation_counter_resets_on_recovery(self, mini_server):
        node = build_node(mini_server, LoadSchedule.constant(0.3))
        monitor = QoSMonitor(node, violation_patience=2)
        good = node.space.equal_partition()
        bad = node.space.max_allocation(1)
        monitor.check(good)  # arm
        monitor.check(bad)  # violation 1/2
        assert monitor.check(good).trigger is Trigger.NONE  # reset
        assert monitor.check(bad).trigger is Trigger.NONE  # violation 1/2 again

    def test_invalid_parameters(self, mini_server):
        node = build_node(mini_server, LoadSchedule.constant(0.3))
        with pytest.raises(ValueError):
            QoSMonitor(node, load_change_threshold=0.0)
        with pytest.raises(ValueError):
            QoSMonitor(node, violation_patience=0)
