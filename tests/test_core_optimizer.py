"""Unit tests for the constrained acquisition optimizer (Eqs. 4-6)."""

import numpy as np
import pytest

from repro.core import (
    AcquisitionOptimizer,
    DropoutDecision,
    GaussianProcess,
    ScoreFunction,
    run_bootstrap,
)


@pytest.fixture
def fitted(quiet_node):
    """A GP fit on the bootstrap samples of the quiet node."""
    fn = ScoreFunction()
    result = run_bootstrap(quiet_node, fn)
    x = np.array([quiet_node.space.to_unit_cube(c) for c in result.configs])
    y = np.array(result.scores)
    gp = GaussianProcess().fit(x, y)
    sampled = {c.flat() for c in result.configs}
    best = max(result.scores)
    incumbent = result.configs[int(np.argmax(result.scores))]
    return gp, sampled, best, incumbent


class TestPropose:
    def test_candidates_valid_and_unseen(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent)
        assert proposal.candidates
        for candidate in proposal.candidates:
            quiet_node.space.validate(candidate.config)
            assert candidate.config.flat() not in sampled

    def test_candidates_ranked_descending(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent)
        values = [c.acquisition_value for c in proposal.candidates]
        assert values == sorted(values, reverse=True)

    def test_max_acquisition_nonnegative(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent)
        assert proposal.max_acquisition >= 0.0

    def test_deterministic_given_seed(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        a = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(5))
        b = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(5))
        pa = a.propose(gp, best, sampled, incumbent=incumbent)
        pb = b.propose(gp, best, sampled, incumbent=incumbent)
        assert [c.config for c in pa.candidates] == [c.config for c in pb.candidates]

    def test_pool_disabled_still_works(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(
            quiet_node.space, pool_size=0, rng=np.random.default_rng(0)
        )
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent)
        assert proposal.max_acquisition >= 0.0

    def test_invalid_construction(self, quiet_node):
        with pytest.raises(ValueError):
            AcquisitionOptimizer(quiet_node.space, n_restarts=0)
        with pytest.raises(ValueError):
            AcquisitionOptimizer(quiet_node.space, pool_size=-1)


class TestDropoutPinning:
    def test_pinned_row_preserved(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        pin_row = incumbent.job_allocation(0)
        dropout = DropoutDecision(job_index=0, allocation=pin_row)
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent, dropout=dropout)
        for candidate in proposal.candidates:
            assert candidate.config.job_allocation(0) == pin_row

    def test_greedy_pin_is_shrunk_to_fit(self, quiet_node, fitted):
        """A pinned max-allocation row must leave one unit for others."""
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        greedy = quiet_node.space.max_allocation(1)
        dropout = DropoutDecision(job_index=1, allocation=greedy.job_allocation(1))
        proposal = opt.propose(gp, best, sampled, incumbent=incumbent, dropout=dropout)
        for candidate in proposal.candidates:
            quiet_node.space.validate(candidate.config)


class TestUpperCaps:
    def test_caps_respected(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        units = [r.units for r in quiet_node.spec.resources]
        caps = np.array(
            [
                [2, 2, 2],  # lc0 capped low
                [u - quiet_node.n_jobs + 1 for u in units],
                [u - quiet_node.n_jobs + 1 for u in units],
            ],
            dtype=float,
        )
        proposal = opt.propose(
            gp, best, sampled, incumbent=incumbent, upper_caps=caps
        )
        for candidate in proposal.candidates:
            for r in range(quiet_node.space.n_resources):
                assert candidate.config.get(0, r) <= 2

    def test_caps_keep_configs_valid(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(1))
        caps = np.full((3, 3), 3.0)
        proposal = opt.propose(
            gp, best, sampled, incumbent=incumbent, upper_caps=caps
        )
        for candidate in proposal.candidates:
            quiet_node.space.validate(candidate.config)


class TestExploitWalk:
    def test_exploit_proposes_valid_unseen(self, quiet_node, fitted):
        gp, sampled, best, incumbent = fitted
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        proposal = opt.propose_exploit(gp, incumbent, sampled)
        for candidate in proposal.candidates:
            quiet_node.space.validate(candidate.config)
            assert candidate.config.flat() not in sampled

    def test_exploit_empty_when_mean_flat(self, quiet_node):
        """A constant GP gives the walk nowhere to go."""
        x = np.array([quiet_node.space.to_unit_cube(quiet_node.space.equal_partition())])
        gp = GaussianProcess().fit(x, np.array([0.5]))
        opt = AcquisitionOptimizer(quiet_node.space, rng=np.random.default_rng(0))
        proposal = opt.propose_exploit(
            gp, quiet_node.space.equal_partition(), {x.tobytes()}
        )
        assert proposal.max_acquisition == 0.0 or proposal.candidates
