"""Fixture: every UNITS (RPL7xx) rule fires.

Domains are seeded from the quantity-alias annotations themselves
(``Seconds``/``Millis``/``UnitCube``) plus one registry entry the test
supplies (``knee_latency.return=Millis`` for RPL705).  The capacity
fixture ``tight_partition`` only fires when the test configures
``units_capacities`` — the Eq. 6 column-sum check is opt-in.
"""

from repro.core.units import Millis, Seconds, UnitCube
from repro.resources.allocation import Configuration


def window_total(window_s: Seconds, latency_ms: Millis) -> Seconds:
    return window_s + latency_ms  # RPL701: Seconds + Millis


def qos_ok(target_ms: Millis, measured_s: Seconds) -> bool:
    return measured_s <= target_ms  # RPL704: s compared against ms


def embed(x: UnitCube) -> UnitCube:
    return x


def cube_escape() -> UnitCube:
    level = 1.25
    return embed(level)  # RPL702: provably leaves [0, 1]


def zero_floor_partition() -> Configuration:
    # RPL703: entry (0, 0) is below the Eq. 5 one-unit floor.
    return Configuration.from_matrix([[0, 4, 4], [5, 4, 3]])


def tight_partition() -> Configuration:
    # Columns sum to (9, 8): legal until the test configures
    # units_capacities=("cores=10", "llc=8"), then RPL703 (Eq. 6).
    return Configuration.from_matrix([[4, 4], [5, 4]])


def knee_latency(points):  # RPL705: registered return lacks its alias
    return 12.5
