"""Fixture: numerics-hygiene rules (RPL401, RPL402) fire here."""

import numpy as np


def exact_check(acquisition_value):
    return acquisition_value == 0.5  # RPL401: bare float equality


def narrow(arr):
    small = arr.astype(np.float32)  # RPL402: narrowing astype
    return small + np.zeros(3, dtype="float32")  # RPL402: narrow dtype kwarg
