"""Fixture: compliant concurrency & lifecycle idioms — zero FLOW findings.

Mirror of ``flow_bad.py``: the same shapes done right.  Locks are taken
in one global order everywhere; the RLock helper re-enters legally;
blocking work happens after the lock is released; pool arguments are
frozen or self-registering; resources use ``with`` / ``finally`` /
ownership transfer; and every growing container has an eviction path,
a ``len()`` bound guard, or a ``deque(maxlen=...)`` bound.
"""

import collections
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.sanitizer import register_shared

RING = collections.deque(maxlen=64)  # bounded: append-only is fine

EVENTS = []  # grows in pump(), drained in drain()


class First:
    def __init__(self) -> None:
        self._lock = threading.Lock()


class Second:
    def __init__(self) -> None:
        self._lock = threading.Lock()


def locked_pair(first: First, second: Second) -> int:
    with first._lock:
        with second._lock:  # consistent order: First before Second
            return 1


def locked_pair_again(first: First, second: Second) -> int:
    with first._lock:
        with second._lock:  # same order: no cycle
            return 2


class Reentrant:
    """Self-guarding helpers re-take the RLock: legal, not a deadlock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.value = 0

    def bump(self) -> None:
        with self._lock:
            self._bump_inner()

    def _bump_inner(self) -> None:
        with self._lock:
            self.value += 1


class Quiet:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.pending = []

    def broadcast(self) -> None:
        with self._lock:
            batch = list(self.pending)
            self.pending.clear()
        time.sleep(0.01)  # blocking *after* the lock is released
        del batch


@dataclass(frozen=True)
class Snapshot:
    """Frozen payloads may cross threads freely."""

    value: int


class SharedBuf:
    """Registers itself with the sanitizer hooks: a known shared object."""

    def __init__(self) -> None:
        self.slots = {}
        register_shared(self)


def consume(snap: Snapshot, buf: SharedBuf) -> None:
    buf.slots[snap.value] = True


def fan_out() -> None:
    snap = Snapshot(value=1)
    buf = SharedBuf()
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        pool.submit(consume, snap, buf)  # frozen + registered: fine
    finally:
        pool.shutdown()


def read_with(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def read_finally(path: str) -> str:
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def open_for_caller(path: str):
    fh = open(path)
    return fh  # ownership transferred to the caller


class HandleHolder:
    def __init__(self, path: str) -> None:
        self.fh = open(path)  # owned by the object, closed there

    def close(self) -> None:
        self.fh.close()


class SafeTally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def bump(self) -> None:
        self._lock.acquire()
        try:
            self.count += 1
        finally:
            self._lock.release()


def pump_ring() -> None:
    RING.append(1)  # deque(maxlen=...): bounded by construction


def pump() -> None:
    EVENTS.append(1)


def drain() -> None:
    while EVENTS:
        EVENTS.pop()  # the eviction path RPL805 looks for


def spin() -> None:
    worker = threading.Thread(target=pump_ring)
    feeder = threading.Thread(target=pump)
    worker.start()
    feeder.start()


class BoundedLog:
    """Long-lived log whose growth is len()-guarded at the growth site."""

    def __init__(self) -> None:
        self.entries = []
        self._worker = threading.Thread(target=self.record)
        register_shared(self, container_attrs=("entries",))

    def record(self) -> None:
        if len(self.entries) < 100:
            self.entries.append(1)
