"""Fixture: RPL201 (reachable shared-state mutation) and RPL203 fire.

``fan_out`` hands ``worker`` to a thread pool; ``worker`` mutates its
``SharedState`` parameter directly and via the transitively called
``helper``, and ``bump_global`` rebinds a module global.
"""

from concurrent.futures import ThreadPoolExecutor

_TOTAL = 0


class SharedState:
    def __init__(self):
        self.results = {}
        self.count = 0


def helper(state: SharedState):
    state.results.clear()  # RPL201: in-place mutator on shared param


def bump_global():
    global _TOTAL
    _TOTAL = _TOTAL + 1  # RPL201: module-global write


def worker(state: SharedState, item):
    state.count += 1  # RPL201: attribute write on shared param
    state.results[item] = True  # RPL201: item write on shared param
    helper(state)
    bump_global()


def fan_out(state: SharedState, items):
    with ThreadPoolExecutor() as pool:
        for item in items:
            pool.submit(worker, state, item)


class FrozenThing:
    def thaw(self):
        object.__setattr__(self, "value", 1)  # RPL203: outside __post_init__
