"""Fixture: every determinism rule (RPL101-RPL104) fires here."""

import random  # noqa: F401  (RPL103: globally seeded stdlib random)
import time

import numpy as np


def fresh_generator():
    return np.random.default_rng()  # RPL101: unseeded


def legacy_draw():
    return np.random.rand(3)  # RPL102: hidden global RandomState


def stamp():
    return time.time()  # RPL104: wall-clock read
