"""Fixture: every COST-family (RPL10xx) hazard, one per method.

A scheduler-shaped service whose event handlers carry declared budgets
(wired up by the test config) and then blow through them: a
fleet-sized scan under an O(small) budget — directly and through a
two-deep callee chain — a same-family quadratic, an n_nodes-sized
materialization on a hot path, and a pure costly helper recomputed
with unchanged arguments.  The config also registers one stale budget
entry, one unparseable budget expression, and one unbudgeted hot entry
point, so the registry-health rule has something to report.
"""

from typing import Dict, List, Tuple


class Fleet:
    """Cluster-shaped state; the test config sizes its collections."""

    def __init__(self) -> None:
        self.nodes: List[int] = []
        self.jobs: Dict[str, int] = {}


class BadService:
    def __init__(self) -> None:
        self.fleet = Fleet()

    def handle(self, t: float) -> int:
        """Budgeted O(small), hot: scans the whole fleet per event."""
        total = 0
        for node in self.fleet.nodes:
            total += node
        return total

    def deep(self, t: float) -> int:
        """Budgeted O(small): the scan hides two calls down."""
        return self._helper(t)

    def _helper(self, t: float) -> int:
        return self._scan(t)

    def _scan(self, t: float) -> int:
        busy = 0
        for node in self.fleet.nodes:
            if node > t:
                busy += 1
        return busy

    def quad(self) -> List[Tuple[int, int]]:
        """Nested loops over the same n_nodes axis: provable O(N^2)."""
        pairs = []
        for a in self.fleet.nodes:
            for b in self.fleet.nodes:
                pairs.append((a, b))
        return pairs

    def hot_alloc(self, t: float) -> List[int]:
        """Budgeted O(n_nodes) but hot: the sorted() copy is the hit."""
        return sorted(self.fleet.nodes)

    def recheck(self, t: float) -> bool:
        """Budgeted: recomputes a pure fleet-sized answer twice."""
        first = self.loads_of(3, t)
        second = self.loads_of(3, t)
        return first == second

    def loads_of(self, index: int, t: float) -> Tuple[float, ...]:
        """Pure and non-constant: one pass over the fleet."""
        loads = []
        for node in self.fleet.nodes:
            loads.append(node + t + index)
        return tuple(loads)

    def unbudgeted_hot(self, t: float) -> int:
        """Registered hot but missing from the budgets table."""
        return int(t)
