"""Runtime fixtures for repro-san: a deliberately racy accumulator and
hash-order probe targets.

Lives under ``lint_fixtures`` so the repo-wide lint sweep skips it —
the whole point of :class:`RacyAccumulator` is to violate the lock
discipline the linter enforces.
"""

import threading


class RacyAccumulator:
    """Half lock-disciplined, half deliberately broken."""

    def __init__(self):
        self._lock = threading.Lock()
        self.unguarded = 0   # written with no lock: the seeded race
        self.guarded = 0     # every access under self._lock
        self.read_only = 7   # written once pre-sharing, then only read

    def bump_unguarded(self, n=100):
        for _ in range(n):
            self.unguarded += 1  # repro-lint: disable=RPL603

    def bump_guarded(self, n=100):
        for _ in range(n):
            with self._lock:
                self.guarded += 1

    def peek_unguarded(self):
        total = 0
        for _ in range(100):
            total += self.unguarded  # repro-lint: disable=RPL603
        return total

    def read_shared(self):
        return self.read_only


def ordered_trajectory():
    """Hash-order independent: iterates sorted, same in every universe."""
    keys = {f"job-{i}": i * i for i in range(50)}
    return [keys[name] for name in sorted(keys)]


def hash_dependent_trajectory():
    """Hash-order DEPENDENT: set iteration order leaks into the output."""
    names = {f"job-{i}" for i in range(50)}
    return [name for name in names]
