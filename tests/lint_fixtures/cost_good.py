"""Fixture: the same shapes as ``cost_bad.py``, done right.

Every method below carries the same budgets as its bad twin, and
silence here is what the COST family's precision rests on: incremental
dirty-set drains instead of fleet scans, cross-family (n_jobs x
n_nodes) products left alone, bounded slices of sorted candidates,
values computed once and threaded down, and a registry whose every
entry resolves, parses, and budgets its hot entry points.
"""

from typing import Dict, List, Set, Tuple


class Fleet:
    """Cluster-shaped state; the test config sizes its collections."""

    def __init__(self) -> None:
        self.nodes: List[int] = []
        self.jobs: Dict[str, int] = {}


class GoodService:
    def __init__(self) -> None:
        self.fleet = Fleet()
        self.dirty: Set[int] = set()
        self.queue: List[int] = []
        self.max_probe = 4

    def handle(self, t: float) -> int:
        """Budgeted O(small): drains the commit-maintained dirty set."""
        total = 0
        for index in sorted(self.dirty):
            total += index
        self.dirty.clear()
        return total

    def deep(self, t: float) -> int:
        """Budgeted O(small): the callee chain stays constant-cost."""
        return self._helper(t)

    def _helper(self, t: float) -> int:
        return self._peek(t)

    def _peek(self, t: float) -> int:
        return len(self.fleet.nodes) + int(t)

    def placement_matrix(self) -> List[Tuple[str, int]]:
        """Cross-family n_jobs x n_nodes product: deliberate, silent."""
        pairs = []
        for name in self.fleet.jobs:
            for node in self.fleet.nodes:
                pairs.append((name, node))
        return pairs

    def probe(self, t: float) -> int:
        """Budgeted O(small): a bounded slice of the candidate list."""
        best = -1
        for index in self.queue[: self.max_probe]:
            if index > best:
                best = index
        return best

    def recheck(self, t: float) -> bool:
        """Budgeted: computes the pure answer once, threads it down."""
        loads = self.loads_of(3, t)
        return self._verify(loads)

    def _verify(self, loads: Tuple[float, ...]) -> bool:
        return all(load >= 0 for load in loads)

    def loads_of(self, index: int, t: float) -> Tuple[float, ...]:
        """Pure and non-constant: one pass over the fleet."""
        loads = []
        for node in self.fleet.nodes:
            loads.append(node + t + index)
        return tuple(loads)
