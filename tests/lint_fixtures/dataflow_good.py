"""Fixture: no DATAFLOW (RPL6xx) findings.

Every generator reaching a ``Generator``-typed parameter is
seed-derived (explicit seed, ``resolve_rng``, or ``spawn``); only clock
instances reach ``Clock``-typed parameters; and every attribute write
on the guarded cache holds its lock on all paths — including the
branchy method, which acquires on *both* arms.  The pool worker's
locked write is also the RPL201 regression case: deliberate
synchronization must not be flagged as shared-state mutation.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from numpy.random import Generator


def consume(rng: Generator) -> float:
    return float(rng.random())


def seeded_local() -> float:
    rng = np.random.default_rng(7)  # explicit seed
    return consume(rng)


def seeded_generator_over_pcg() -> float:
    gen = np.random.Generator(np.random.PCG64(1234))
    return consume(gen)


def spawned_child(parent: Generator) -> float:
    child = parent.spawn(1)[0]
    return consume(child)


def int_seed_is_fine() -> float:
    seed = 7
    rng = np.random.default_rng(seed)
    payload = {"rng": rng}
    return consume(payload["rng"])


class Clock:
    def now_s(self) -> float:
        return 0.0


class TickClock(Clock):
    def __init__(self) -> None:
        self._now = 0.0

    def now_s(self) -> float:
        return self._now


def measure(clock: Clock) -> float:
    return clock.now_s()


def timed_run() -> float:
    clock = TickClock()  # a real Clock subclass
    return measure(clock)


class GuardedCache:
    """Lock-disciplined shared object: every write holds ``_lock``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries = {}
        self.hits = 0

    def put(self, key, value) -> None:
        with self._lock:
            self.entries[key] = value

    def bump(self) -> None:
        with self._lock:
            self.hits += 1

    def branchy(self, flag: bool) -> None:
        if flag:
            self._lock.acquire()
        else:
            self._lock.acquire()
        self.hits += 1  # lock held on all paths
        self._lock.release()


class SharedState:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0


def worker(state: SharedState) -> None:
    with state.lock:
        state.count += 1  # locked: RPL603's domain, not an RPL201 finding


def fan_out(state: SharedState, items) -> None:
    with ThreadPoolExecutor() as pool:
        for _ in items:
            pool.submit(worker, state)
