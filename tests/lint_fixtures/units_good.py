"""Fixture: the UNITS (RPL7xx) rules stay silent on clean code.

Mirrors ``units_bad.py`` construct for construct: time arithmetic goes
through explicit conversions, cube inputs are clamped, partition
literals respect the Eq. 5 floor (and the Eq. 6 sums the capacity test
configures), and the registered signature carries its alias.
"""

from repro.core.units import Millis, Seconds, UnitCube, to_millis
from repro.resources.allocation import Configuration


def window_total_ms(window_s: Seconds, latency_ms: Millis) -> Millis:
    return to_millis(window_s) + latency_ms


def qos_ok(target_ms: Millis, measured_s: Seconds) -> bool:
    return to_millis(measured_s) <= target_ms


def embed(x: UnitCube) -> UnitCube:
    return x


def clamped_cube() -> UnitCube:
    level = 1.25
    return embed(min(level, 1.0))


def floor_partition() -> Configuration:
    return Configuration.from_matrix([[1, 4, 4], [5, 4, 3]])


def summed_partition() -> Configuration:
    # Columns sum to (10, 8), matching the capacity test's
    # units_capacities=("cores=10", "llc=8").
    return Configuration.from_matrix([[5, 4], [5, 4]])


def knee_latency(points) -> Millis:  # registered, alias present
    return 12.5
