"""Fixture: every contract-presence rule (RPL301-RPL304) fires here."""


class PlacementPolicy:
    def place(self, cluster, requests):  # base itself is exempt
        raise NotImplementedError


class GreedyPlacement(PlacementPolicy):
    def place(self, cluster, requests):  # RPL301: no @placement_contract
        return None


class Policy:
    def partition(self, node, budget):  # base itself is exempt
        raise NotImplementedError


class SimplePolicy(Policy):
    def partition(self, node, budget):  # RPL303: no @policy_contract
        return None


class AcquisitionOptimizer:
    def propose(self, node):  # RPL302: no @proposal_contract
        return None


class Space:
    def make(self):  # RPL304: configured constructor, no @partition_contract
        return None
