"""Fixture: telemetry used the sanctioned way lints clean."""

from contextlib import ExitStack

from repro.telemetry import Telemetry


def instrumented(telemetry: Telemetry) -> None:
    telemetry.metrics.counter("engine.samples").add()
    telemetry.metrics.counter("node.qos.violations", job="img-dnn").add()
    telemetry.metrics.gauge("node.load_fraction").set(0.5)
    telemetry.metrics.histogram("node.window_ms").observe(3.2)
    with telemetry.tracer.span("engine.optimize", jobs=2) as span:
        span.set("qos_met", True)


def stacked(telemetry: Telemetry) -> None:
    with ExitStack() as stack:
        stack.enter_context(telemetry.tracer.span("cluster.place"))


def dynamic_name(telemetry: Telemetry, name: str) -> None:
    # Non-literal names are a runtime concern (MetricRegistry validates);
    # the static rule only judges literals.
    telemetry.metrics.counter(name).add()
