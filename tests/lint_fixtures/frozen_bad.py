"""Fixture: RPL202 fires on unfrozen dataclasses in key positions."""

from dataclasses import dataclass


@dataclass
class CacheKey:  # RPL202(a): configured key class, not frozen
    job: str
    units: int


@dataclass
class LooseKey:
    name: str


def lookup(cache, name):
    return cache.get(LooseKey(name))  # RPL202(b): unfrozen key object
