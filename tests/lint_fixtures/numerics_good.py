"""Fixture: tolerance-based comparisons and float64 lint clean."""

import math

import numpy as np


def tolerant_check(acquisition_value):
    return math.isclose(acquisition_value, 0.5, abs_tol=1e-12)


def wide(arr):
    kept = arr.astype(np.float64)
    return kept + np.zeros(3, dtype="float64")
