"""Fixture: frozen dataclass keys lint clean."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheKey:
    job: str
    units: int


def lookup(cache, job, units):
    return cache.get(CacheKey(job, units))
