"""Fixture: pool workers that build private state lint clean."""

from concurrent.futures import ThreadPoolExecutor


class SharedState:
    def __init__(self):
        self.results = {}


def worker(state: SharedState, item):
    # Reads shared state, mutates only worker-private containers.
    local = dict(state.results)
    local[item] = True
    return local


def fan_out(state: SharedState, items):
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(worker, state, item) for item in items]
    merged = {}
    for future in futures:  # serial merge after the pool joins
        merged.update(future.result())
    return merged


class FrozenThing:
    def __post_init__(self):
        object.__setattr__(self, "value", 1)  # sanctioned back door
