"""Fixture: every FLOW (RPL8xx) rule fires.

The two ``Order*`` classes take each other's locks in opposite orders —
the textbook ABBA deadlock RPL801 exists to catch.  ``Chatty`` blocks
under its lock both directly and through a callee (the interprocedural
``via`` form).  ``fan_out`` hands an unregistered mutable object to a
pool worker; the lifecycle functions leak an ``open`` handle on every
path or only on exception paths; and the growth cases append to a
module global and a long-lived object's list from thread targets with
no eviction anywhere.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

EVENTS = []  # module-level, only ever appended to


class OrderA:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def tangle(self, other: "OrderB") -> None:
        with self._lock:
            with other._lock:  # RPL801: OrderA._lock -> OrderB._lock
                pass


class OrderB:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def tangle(self, other: "OrderA") -> None:
        with self._lock:
            with other._lock:  # RPL801: OrderB._lock -> OrderA._lock
                pass


class Chatty:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.pending = []

    def broadcast(self) -> None:
        with self._lock:
            time.sleep(0.01)  # RPL802: blocking directly under the lock

    def flush_all(self) -> None:
        with self._lock:
            self._drain()  # RPL802: callee blocks (interprocedural)

    def _drain(self) -> None:
        time.sleep(0.01)  # not under a lock *here*


class RequestState:
    """Mutable, unfrozen, unregistered: must not cross threads bare."""

    def __init__(self) -> None:
        self.fields = {}


def process(state: RequestState) -> None:
    state.fields["seen"] = True


def fan_out() -> None:
    state = RequestState()
    pool = ThreadPoolExecutor(max_workers=2)
    pool.submit(process, state)  # RPL803: state escapes unregistered
    pool.shutdown()


def leak(path: str) -> str:
    fh = open(path)  # RPL804: never released
    data = fh.read()
    return data


def close_without_finally(path: str) -> str:
    fh = open(path)  # RPL804: an exception in read() leaks the handle
    data = fh.read()
    fh.close()
    return data


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def grab(self) -> None:
        self._lock.acquire()  # RPL804: never released
        self.count += 1

    def bump(self) -> None:
        self._lock.acquire()  # RPL804: release not in a finally
        self.count += 1
        self._lock.release()


def pump() -> None:
    EVENTS.append(1)  # RPL805: grows forever, reachable from a thread


def spin() -> None:
    worker = threading.Thread(target=pump)
    worker.start()


class EventLog:
    """Long-lived object whose list only grows from its own worker."""

    def __init__(self) -> None:
        self.entries = []
        self._worker = threading.Thread(target=self.record)

    def record(self) -> None:
        self.entries.append(len(EVENTS))  # RPL805
