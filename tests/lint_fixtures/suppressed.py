"""Fixture: all three suppression comment forms silence findings."""
# repro-lint: disable-file=RPL103

import random  # noqa: F401  (silenced file-wide above)
import time

import numpy as np


def fresh_generator():
    return np.random.default_rng()  # repro-lint: disable=RPL101


def legacy_draw():
    # repro-lint: disable-next-line=RPL102
    return np.random.rand(3)


def stamp():
    return time.time()  # repro-lint: disable=all
