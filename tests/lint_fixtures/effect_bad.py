"""Fixture: every PURE (RPL9xx) rule fires.

``Prober.scan`` is registered as both a declared-pure root and a probe
entry point (mirroring ``probe_admit``), then breaks every promise:
it writes through ``self``, calls the commit mutator, draws fresh RNG
and wall-clock state, and iterates raw sets into ordered decisions.
``tally`` hides a parameter mutation two calls deep behind ``relay`` —
the interprocedural case argument binding must still charge to the
root.  ``Board``'s snapshot accessors leak live containers, directly
and through a local alias.  The test config also registers a
``vanished`` function that does not exist (RPL905).
"""

import time
from typing import Dict, List, Set

import numpy as np

TOTALS: Dict[str, int] = {}


def declared_pure(fn):
    return fn


class Committer:
    """The commit half of the phase split."""

    def __init__(self) -> None:
        self.placed: List[str] = []

    def commit(self, name: str) -> None:
        self.placed.append(name)


class Prober:
    """A probe that is anything but side-effect-free."""

    def __init__(self) -> None:
        self.committer = Committer()
        self.seen = 0
        self.limits: Dict[str, int] = {"a": 1}

    def scan(self, names: Set[str]) -> List[str]:
        self.seen += 1  # RPL901: augmented assign on self
        self.limits["a"] = 2  # RPL901: subscript write on self state
        self.committer.commit("job")  # RPL902: commit on the probe path
        rng = np.random.default_rng()  # RPL902: fresh RNG state
        started = time.time()  # RPL902: wall-clock read
        ordered = list(names)  # RPL904: set into an ordered list
        for name in names:  # RPL904: set iterated by a for loop
            ordered.append(name)
        return ordered + [str(rng.random()), str(started)]


def deep_mutate(report: List[str]) -> None:
    report.append("x")


def relay(report: List[str]) -> None:
    deep_mutate(report)


def tally(items: List[str]) -> List[str]:
    """Registered pure; the mutation of ``items`` hides two calls deep."""
    log: List[str] = []
    relay(log)  # fine: the callee mutates a fresh local
    relay(items)  # RPL901: parameter mutated via relay -> deep_mutate
    return log


def bump_totals(name: str) -> int:
    """Registered pure; writes a module-level global."""
    TOTALS[name] = TOTALS.get(name, 0) + 1  # RPL901: global state
    return TOTALS[name]


@declared_pure
def marked_mutator(acc: List[int]) -> None:
    acc.append(1)  # RPL901: @declared_pure function mutates its param


class Board:
    """Snapshot accessors that leak live containers."""

    def __init__(self) -> None:
        self._jobs: Dict[str, int] = {}
        self._log = []

    def status(self) -> Dict[str, int]:
        return self._jobs  # RPL903: live dict escapes

    def timeline(self):
        log = self._log
        return log  # RPL903: live list escapes through a local alias
