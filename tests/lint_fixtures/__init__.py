"""Known-good and known-bad snippets exercised by test_repro_lint.py.

Each rule family has a ``*_bad.py`` module that must trigger its rules
and a ``*_good.py`` module that must lint clean.  These files are never
imported — they exist purely as AST input for the linter.
"""
