"""Fixture: every DATAFLOW (RPL6xx) rule fires.

The RPL601 cases launder a fresh (OS-entropy) generator through the
exact channels the per-file RPL10x rules cannot see: an intermediate
local, a dataclass field, and a constant-keyed dict payload.  The
``Generator(PCG64())`` form is the RPL10x blind spot regression case —
``default_rng`` never appears, so RPL101/RPL102 stay silent while the
taint analysis still flags the flow.
"""

import threading

import numpy as np
from numpy.random import Generator


def consume(rng: Generator) -> float:
    return float(rng.random())


def fresh_through_local() -> float:
    gen = np.random.Generator(np.random.PCG64())  # fresh OS entropy
    return consume(gen)  # RPL601


class RngHolder:
    def __init__(self, rng: Generator) -> None:
        self.rng = rng


def fresh_through_field() -> float:
    holder = RngHolder(np.random.Generator(np.random.PCG64DXSM()))
    return consume(holder.rng)  # RPL601


def fresh_through_payload() -> float:
    payload = {"rng": np.random.Generator(np.random.MT19937()), "tag": "x"}
    return consume(payload["rng"])  # RPL601


class Clock:
    def now_s(self) -> float:
        return 0.0


class StubTimer:
    def now_s(self) -> float:
        return 42.0


def measure(clock: Clock) -> float:
    return clock.now_s()


def wrong_timer() -> float:
    timer = StubTimer()  # not a Clock subclass
    return measure(timer)  # RPL602


class GuardedCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.entries = {}
        self.hits = 0

    def put(self, key, value) -> None:
        self.entries[key] = value  # RPL603: no lock held

    def bump_one_branch(self, flag: bool) -> None:
        if flag:
            self._lock.acquire()
        self.hits += 1  # RPL603: lock held on only one path
