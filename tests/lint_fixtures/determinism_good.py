"""Fixture: explicitly seeded randomness lints clean."""

import numpy as np


def seeded_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def draw(rng: np.random.Generator):
    return rng.random(3)
