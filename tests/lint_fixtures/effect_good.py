"""Fixture: the same shapes as ``effect_bad.py``, done right.

Every function below is registered pure / as a probe entry by the test
config, so silence here is what the PURE family's precision rests on:
mutation of *fresh* locals (even through callees), defensive-copy
snapshots, sorted set iteration, RNG threaded in as a parameter, and
order-blind set consumption must all stay unflagged.
"""

from typing import Dict, List, Set

TOTALS: Dict[str, int] = {"a": 1}


def declared_pure(fn):
    return fn


class Committer:
    def __init__(self) -> None:
        self.placed: List[str] = []

    def commit(self, name: str) -> None:
        self.placed.append(name)


class Prober:
    """Side-effect-free probe: fresh state only, deterministic order."""

    def __init__(self) -> None:
        self.committer = Committer()
        self.limit = 4

    def scan(self, names: Set[str], rng) -> List[str]:
        ordered = sorted(names)  # sorted(): order-blind consumption
        best = max(names) if names else ""  # aggregate: order-blind
        picked = []  # fresh local: mutating it is fine
        for name in ordered[: self.limit]:
            if name in names:  # membership test: order-blind
                picked.append(name)
        jitter = float(rng.random())  # RNG is threaded in, not drawn
        return picked + [best, str(jitter)]

    def apply(self, names: Set[str], rng) -> None:
        """The commit half lives outside the probe entry's closure."""
        for name in self.scan(names, rng):
            self.committer.commit(name)


def fill(report: List[str]) -> None:
    report.append("x")


def relay(report: List[str]) -> None:
    fill(report)


def tally(items: List[str]) -> List[str]:
    """Registered pure: every callee mutation lands on a fresh local."""
    log: List[str] = []
    relay(log)
    for item in items:
        log.append(item)
    return log


def read_totals(name: str) -> int:
    """Registered pure: reads the module global, never writes it."""
    return TOTALS.get(name, 0)


@declared_pure
def marked_builder(xs: List[int]) -> List[int]:
    acc: List[int] = []
    acc.extend(xs)
    return acc


class Board:
    """Snapshot accessors returning defensive copies."""

    def __init__(self) -> None:
        self._jobs: Dict[str, int] = {}
        self._log = []

    def status(self) -> Dict[str, int]:
        return dict(self._jobs)

    def timeline(self):
        return tuple(self._log)

    def placements(self) -> Dict[str, int]:
        return {name: index for name, index in self._jobs.items()}
