"""Fixture: every telemetry rule (RPL501-RPL502) fires here."""

from repro.telemetry import Telemetry


def bad_metric_names(telemetry: Telemetry) -> None:
    telemetry.metrics.counter("Engine.Samples").add()  # RPL501: capitals
    telemetry.metrics.gauge("node load").set(1.0)  # RPL501: space
    telemetry.metrics.histogram("9th_window").observe(2.0)  # RPL501: digit first


def leaked_span(telemetry: Telemetry):
    span = telemetry.tracer.span("engine.optimize")  # RPL502: no `with`
    span.__enter__()
    return span
