"""Fixture: decorated boundaries (and abstract methods) lint clean."""

import abc


def placement_contract(fn):
    return fn


def policy_contract(fn):
    return fn


def proposal_contract(fn):
    return fn


def partition_contract(fn):
    return fn


class PlacementPolicy:
    def place(self, cluster, requests):
        raise NotImplementedError


class AbstractPlacement(PlacementPolicy):
    @abc.abstractmethod
    def place(self, cluster, requests):  # abstract: contract not required
        ...


class GreedyPlacement(PlacementPolicy):
    @placement_contract
    def place(self, cluster, requests):
        return None


class Policy:
    def partition(self, node, budget):
        raise NotImplementedError


class SimplePolicy(Policy):
    @policy_contract
    def partition(self, node, budget):
        return None


class AcquisitionOptimizer:
    @proposal_contract
    def propose(self, node):
        return None


class Space:
    @partition_contract
    def make(self):
        return None
