"""Tests for the repro-units abstract domain and its runtime agreement.

Three concerns live here:

* the :class:`~repro.analysis.units.UnitValue` lattice itself (joins,
  boundary ranges, scalar absorption) and the registry/config parsers;
* the central soundness property behind RPL703: the static interval
  domain (:func:`~repro.analysis.units.admits_partition`) agrees with
  the runtime partition contracts
  (:func:`~repro.resources.contracts.check_partition_matrix`) — every
  partition the runtime accepts is statically admitted, and every
  partition the checker provably rejects is a runtime violation too;
* regression tests pinning the seconds<->milliseconds conversion sites
  the UNITS dogfooding audit walked through (latency model, saturated
  node fallback), asserting the corrected *values*, not just lint
  cleanliness.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import units as udom
from repro.analysis.config import LintConfig
from repro.core.units import MS_PER_S, to_millis, to_seconds
from repro.resources.contracts import ContractViolation, check_partition_matrix
from repro.workloads import (
    mm1_mean_sojourn,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_sojourn_quantile,
    p95_latency_ms,
    stage_rates,
)

from conftest import make_lc, make_node

INF = float("inf")


# ----------------------------------------------------------------------
# The UnitValue lattice
# ----------------------------------------------------------------------
class TestUnitValueLattice:
    def test_boundary_ranges_mirror_runtime_contracts(self):
        # Allocations are floored at 1 unit (Eq. 5) ...
        for domain in (udom.CORES, udom.CACHE_WAYS, udom.MEMBW_UNITS):
            value = udom.from_domain(domain)
            assert (value.lo, value.hi) == (1.0, INF)
        # ... cube coordinates and fractions live in [0, 1] ...
        for domain in (udom.UNIT_CUBE, udom.FRACTION):
            value = udom.from_domain(domain)
            assert (value.lo, value.hi) == (0.0, 1.0)
        # ... times and rates are non-negative.
        for domain in (udom.SECONDS, udom.MILLIS, udom.RATE):
            value = udom.from_domain(domain)
            assert (value.lo, value.hi) == (0.0, INF)

    def test_join_same_domain_takes_interval_hull(self):
        a = udom.UnitValue(udom.SECONDS, 1.0, 2.0)
        b = udom.UnitValue(udom.SECONDS, 5.0, 9.0)
        assert udom.join(a, b) == udom.UnitValue(udom.SECONDS, 1.0, 9.0)

    def test_join_dimensionless_constant_keeps_the_unit(self):
        # x = 0.0 on one branch, x = window_s on the other: still Seconds.
        zero = udom.UnitValue(udom.DIMENSIONLESS, 0.0, 0.0)
        window = udom.UnitValue(udom.SECONDS, 0.0, 10.0)
        joined = udom.join(zero, window)
        assert joined.domain == udom.SECONDS
        assert (joined.lo, joined.hi) == (0.0, 10.0)

    def test_join_of_two_different_units_is_top(self):
        s = udom.from_domain(udom.SECONDS)
        ms = udom.from_domain(udom.MILLIS)
        assert udom.join(s, ms).is_top

    def test_join_with_top_is_top(self):
        assert udom.join(udom.UNKNOWN, udom.from_domain(udom.MILLIS)).is_top

    def test_join_is_commutative_on_domains(self):
        values = [udom.from_domain(d) for d in sorted(udom.DOMAINS)]
        values.append(udom.UNKNOWN)
        for a in values:
            for b in values:
                assert udom.join(a, b).domain == udom.join(b, a).domain

    def test_predicates(self):
        assert udom.UNKNOWN.is_top
        assert not udom.UNKNOWN.is_unit
        assert udom.from_domain(udom.FRACTION).is_scalar
        assert udom.from_domain(udom.DIMENSIONLESS).is_scalar
        seconds = udom.from_domain(udom.SECONDS)
        assert seconds.is_unit and not seconds.is_scalar
        assert udom.UnitValue(udom.MILLIS, 5.0, 5.0).is_constant
        assert not seconds.is_constant  # infinite bound

    def test_ms_per_s_matches_the_runtime_constant(self):
        assert udom.MS_PER_S == MS_PER_S == 1000.0


class TestConfigParsers:
    def test_parse_registry_splits_on_last_dot(self):
        config = LintConfig(units=("pkg.mod.fn.return=Millis",))
        assert udom.parse_registry(config) == {
            ("pkg.mod.fn", "return"): udom.MILLIS
        }

    def test_parse_registry_skips_unknown_domains(self):
        config = LintConfig(units=("fn.return=Furlongs",))
        assert udom.parse_registry(config) == {}

    def test_parse_capacities(self):
        config = LintConfig(units_capacities=("cores=10", "llc=8.5"))
        assert udom.parse_capacities(config) == (10.0, 8.5)

    def test_units_scope_is_a_path_prefix_filter(self):
        config = LintConfig(units_modules=("repro/",))
        assert udom.in_units_scope(config, "src/repro/core/score.py")
        assert not udom.in_units_scope(config, "examples/demo.py")


# ----------------------------------------------------------------------
# Static interval domain vs. runtime partition contracts
# ----------------------------------------------------------------------
def _degenerate(matrix):
    """Each concrete entry as the exact interval it denotes."""
    return [[(float(v), float(v)) for v in row] for row in matrix]


@st.composite
def partition_cases(draw):
    """A small integer allocation matrix plus candidate capacities."""
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    n_resources = draw(st.integers(min_value=1, max_value=3))
    matrix = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=12),
                min_size=n_resources,
                max_size=n_resources,
            ),
            min_size=n_jobs,
            max_size=n_jobs,
        )
    )
    # Half the time the capacities are the true column sums (a valid
    # Eq. 6 witness), otherwise arbitrary — both sides must agree
    # either way.
    if draw(st.booleans()):
        capacities = [sum(row[j] for row in matrix) for j in range(n_resources)]
    else:
        capacities = draw(
            st.lists(
                st.integers(min_value=1, max_value=40),
                min_size=n_resources,
                max_size=n_resources,
            )
        )
    return matrix, capacities


class TestStaticDomainAgreesWithContracts:
    @given(case=partition_cases())
    @settings(max_examples=200, deadline=None)
    def test_runtime_accept_implies_static_admit(self, case):
        matrix, capacities = case
        try:
            check_partition_matrix(matrix, capacities, "property-test")
        except ContractViolation:
            return  # only runtime-legal partitions constrain the checker
        admitted, reason = udom.admits_partition(
            _degenerate(matrix), [float(c) for c in capacities]
        )
        assert admitted, (
            f"runtime contracts accepted {matrix} with capacities "
            f"{capacities} but the static domain rejected it: {reason}"
        )

    @given(case=partition_cases())
    @settings(max_examples=200, deadline=None)
    def test_static_reject_implies_runtime_violation(self, case):
        matrix, capacities = case
        admitted, _ = udom.admits_partition(
            _degenerate(matrix), [float(c) for c in capacities]
        )
        if admitted:
            return
        with pytest.raises(ContractViolation):
            check_partition_matrix(matrix, capacities, "property-test")

    def test_widened_intervals_never_produce_false_positives(self):
        # An analysis-time interval that merely *may* dip below the
        # floor (lo < 1 but hi >= 1) is not proof; the checker must
        # stay quiet exactly where the runtime might still pass.
        cells = [[(0.0, 4.0), (1.0, 1.0)], [(2.0, 2.0), (3.0, 3.0)]]
        admitted, _ = udom.admits_partition(cells)
        assert admitted

    def test_capacity_check_needs_matching_width(self):
        # Capacities of the wrong arity cannot be matched to columns;
        # the checker abstains rather than guessing.
        cells = _degenerate([[2, 2], [2, 2]])
        admitted, _ = udom.admits_partition(cells, [99.0])
        assert admitted

    def test_eq5_floor_message_names_the_entry(self):
        admitted, reason = udom.admits_partition(_degenerate([[0, 4], [5, 4]]))
        assert not admitted
        assert "(0, 0)" in reason and "Eq. 5" in reason

    def test_eq6_sum_message_names_the_column(self):
        admitted, reason = udom.admits_partition(
            _degenerate([[4, 4], [5, 4]]), [10.0, 8.0]
        )
        assert not admitted
        assert "column 0" in reason and "Eq. 6" in reason


# ----------------------------------------------------------------------
# Satellite: seconds <-> milliseconds regression pins
# ----------------------------------------------------------------------
class TestTimeConversionRegressions:
    @given(ms=st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_exact_for_sane_latencies(self, ms):
        assert to_millis(to_seconds(ms)) == pytest.approx(ms, rel=1e-12, abs=1e-12)

    def test_p95_latency_is_exactly_thousand_times_the_seconds_model(self):
        # Single-stage case (serial_fraction = 0): the tandem model
        # degenerates to the M/M/c quantile, and p95_latency_ms must be
        # that quantity in *milliseconds* — the historical failure mode
        # is returning raw seconds (1000x too small).
        workload = make_lc(serial_fraction=0.0)
        shares = {"llc_ways": 1.0, "membw_units": 1.0}
        qps, cores = 800.0, 4
        mu_serial, mu_parallel = stage_rates(workload, shares, 0.0)
        assert math.isinf(mu_serial)
        expected_s = mmc_sojourn_quantile(qps, mu_parallel, cores, 0.95)
        got_ms = p95_latency_ms(workload, qps, cores, shares)
        assert got_ms == pytest.approx(1000.0 * expected_s)
        # Sanity: a sub-second tail reported in ms is > its seconds value.
        assert got_ms > expected_s

    def test_p95_latency_two_stage_composition_in_millis(self):
        workload = make_lc(serial_fraction=0.3)
        shares = {"llc_ways": 1.0, "membw_units": 1.0}
        qps, cores = 500.0, 4
        mu_serial, mu_parallel = stage_rates(workload, shares, 0.0)
        q_serial = mm1_sojourn_quantile(qps, mu_serial, 0.95)
        q_parallel = mmc_sojourn_quantile(qps, mu_parallel, cores, 0.95)
        m_serial = mm1_mean_sojourn(qps, mu_serial)
        m_parallel = mmc_mean_sojourn(qps, mu_parallel, cores)
        expected_s = max(q_serial + m_parallel, q_parallel + m_serial)
        assert p95_latency_ms(workload, qps, cores, shares) == pytest.approx(
            1000.0 * expected_s
        )

    def test_saturated_node_fallback_reports_milliseconds(self, mini_server):
        # When the queue saturates, the node substitutes a finite
        # window-scaled latency: 1000.0 * window_s * overload.  The
        # 1000.0 is the s->ms conversion, so the reported p95 must
        # scale linearly with the observation window and sit in the
        # millisecond range (>= 1000 * window_s), never the raw
        # seconds range.
        readings = {}
        for window_s in (2.0, 4.0):
            node = make_node(
                mini_server, lc_loads=(1.0,), n_bg=2, window_s=window_s
            )
            config = node.space.equal_partition()
            observation = node.true_performance(config)
            p95 = observation.job("lc0").p95_ms
            assert math.isfinite(p95)
            readings[window_s] = p95
        assert readings[4.0] == pytest.approx(2.0 * readings[2.0])
        assert readings[2.0] >= 1000.0 * 2.0
