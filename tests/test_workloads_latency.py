"""Unit and property tests for the tandem-queue latency model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import LLC_WAYS, MEMORY_BANDWIDTH
from repro.workloads import (
    SATURATED_LATENCY_MS,
    capacity_qps,
    effective_service_rate,
    erlang_c,
    mm1_mean_sojourn,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_sojourn_quantile,
    p95_latency_ms,
    stage_rates,
)

from conftest import make_lc

FULL = {LLC_WAYS: 1.0, MEMORY_BANDWIDTH: 1.0}


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_single_server_equals_utilization(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.3) == pytest.approx(0.3)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_saturated_returns_one(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_known_value_two_servers(self):
        # C(2, 1) = (1/2)^... classic result: a=1, c=2 -> 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_monotone_in_load(self):
        values = [erlang_c(4, a) for a in (0.5, 1.0, 2.0, 3.0, 3.9)]
        assert values == sorted(values)

    def test_more_servers_less_waiting(self):
        assert erlang_c(8, 3.0) < erlang_c(4, 3.0)

    def test_probability_bounds(self):
        for c in (1, 3, 10):
            for a in (0.1, 0.5 * c, 0.95 * c):
                assert 0.0 <= erlang_c(c, a) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestMM1:
    def test_quantile_is_exponential(self):
        # Sojourn of M/M/1 is Exp(mu - lambda).
        q = mm1_sojourn_quantile(50.0, 100.0, 0.95)
        assert q == pytest.approx(-math.log(0.05) / 50.0)

    def test_saturated(self):
        assert math.isinf(mm1_sojourn_quantile(100.0, 100.0))
        assert math.isinf(mm1_mean_sojourn(120.0, 100.0))

    def test_mean(self):
        assert mm1_mean_sojourn(60.0, 100.0) == pytest.approx(1 / 40.0)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            mm1_sojourn_quantile(1.0, 2.0, percentile=1.0)


class TestMMC:
    def test_zero_load_is_service_quantile(self):
        q = mmc_sojourn_quantile(0.0, 100.0, 4, 0.95)
        assert q == pytest.approx(-math.log(0.05) / 100.0)

    def test_saturation_returns_inf(self):
        assert math.isinf(mmc_sojourn_quantile(400.0, 100.0, 4))
        assert math.isinf(mmc_sojourn_quantile(500.0, 100.0, 4))

    def test_quantile_increases_with_load(self):
        qs = [mmc_sojourn_quantile(lam, 100.0, 4) for lam in (50, 200, 350, 390)]
        assert qs == sorted(qs)

    def test_quantile_decreases_with_servers(self):
        q4 = mmc_sojourn_quantile(300.0, 100.0, 4)
        q8 = mmc_sojourn_quantile(300.0, 100.0, 8)
        assert q8 < q4

    def test_quantile_matches_cdf_inversion(self):
        # Verify the bisection: CDF at the returned quantile ~ target.
        lam, mu, c = 250.0, 100.0, 4
        q95 = mmc_sojourn_quantile(lam, mu, c, 0.95)
        q50 = mmc_sojourn_quantile(lam, mu, c, 0.50)
        assert q50 < q95

    def test_mean_formula(self):
        lam, mu, c = 200.0, 100.0, 4
        pw = erlang_c(c, lam / mu)
        expected = 1 / mu + pw / (c * mu - lam)
        assert mmc_mean_sojourn(lam, mu, c) == pytest.approx(expected)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            mmc_sojourn_quantile(-1.0, 100.0, 4)


class TestStageModel:
    def test_stage_rates_split_by_serial_fraction(self):
        lc = make_lc(base_service_rate=1000.0, serial_fraction=0.25)
        mu_s, mu_p = stage_rates(lc, FULL)
        assert mu_s == pytest.approx(4000.0)
        assert mu_p == pytest.approx(1000.0 / 0.75)

    def test_zero_serial_fraction_removes_stage(self):
        lc = make_lc(serial_fraction=0.0)
        mu_s, mu_p = stage_rates(lc, FULL)
        assert math.isinf(mu_s)
        assert mu_p == pytest.approx(lc.base_service_rate)

    def test_capacity_serial_limited_with_many_cores(self):
        lc = make_lc(base_service_rate=1000.0, serial_fraction=0.4)
        # With enough cores the serial stage (mu/sigma = 2500) caps it.
        assert capacity_qps(lc, 10, FULL) == pytest.approx(2500.0)

    def test_capacity_core_limited_with_one_core(self):
        lc = make_lc(base_service_rate=1000.0, serial_fraction=0.4)
        assert capacity_qps(lc, 1, FULL) == pytest.approx(1000.0 / 0.6)

    def test_capacity_monotone_in_cores_until_serial_cap(self):
        lc = make_lc(serial_fraction=0.3)
        caps = [capacity_qps(lc, c, FULL) for c in range(1, 11)]
        assert all(b >= a - 1e-9 for a, b in zip(caps, caps[1:]))

    def test_effective_rate_degrades_with_contention(self):
        lc = make_lc()
        assert effective_service_rate(lc, FULL, contention=1.0) < (
            effective_service_rate(lc, FULL, contention=0.0)
        )

    def test_effective_rate_scales_with_shares(self):
        lc = make_lc()
        starved = {LLC_WAYS: 0.1, MEMORY_BANDWIDTH: 0.1}
        assert effective_service_rate(lc, starved) < effective_service_rate(lc, FULL)


class TestP95Latency:
    def test_saturated_returns_inf(self):
        lc = make_lc(base_service_rate=100.0, serial_fraction=0.3)
        cap = capacity_qps(lc, 4, FULL)
        assert p95_latency_ms(lc, cap * 1.01, 4, FULL) == SATURATED_LATENCY_MS

    def test_low_load_finite_and_positive(self):
        lc = make_lc()
        latency = p95_latency_ms(lc, 10.0, 4, FULL)
        assert 0 < latency < 100

    def test_monotone_in_load(self):
        lc = make_lc()
        cap = capacity_qps(lc, 4, FULL)
        latencies = [p95_latency_ms(lc, f * cap, 4, FULL) for f in (0.1, 0.5, 0.8, 0.95)]
        assert latencies == sorted(latencies)

    def test_more_resources_never_hurt_at_high_load(self):
        lc = make_lc()
        qps = 0.7 * capacity_qps(lc, 4, FULL)
        rich = p95_latency_ms(lc, qps, 4, FULL)
        poor = p95_latency_ms(lc, qps, 4, {LLC_WAYS: 0.3, MEMORY_BANDWIDTH: 0.3})
        assert rich < poor

    def test_knee_shape(self):
        """The curve is flat at low load and explodes near capacity."""
        lc = make_lc()
        cap = capacity_qps(lc, 8, FULL)
        low = p95_latency_ms(lc, 0.1 * cap, 8, FULL)
        mid = p95_latency_ms(lc, 0.6 * cap, 8, FULL)
        high = p95_latency_ms(lc, 0.97 * cap, 8, FULL)
        assert mid < 3 * low  # flat-ish region
        assert high > 5 * low  # divergence

    def test_invalid_inputs(self):
        lc = make_lc()
        with pytest.raises(ValueError):
            p95_latency_ms(lc, -1.0, 4, FULL)
        with pytest.raises(ValueError):
            p95_latency_ms(lc, 10.0, 0, FULL)
        with pytest.raises(ValueError):
            capacity_qps(lc, 0, FULL)


@given(
    sigma=st.floats(0.05, 0.8, allow_nan=False),
    cores=st.integers(1, 10),
    load=st.floats(0.01, 0.95, allow_nan=False),
    llc=st.floats(0.1, 1.0, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_latency_finite_below_capacity(sigma, cores, load, llc):
    lc = make_lc(serial_fraction=sigma)
    shares = {LLC_WAYS: llc, MEMORY_BANDWIDTH: 1.0}
    cap = capacity_qps(lc, cores, shares)
    latency = p95_latency_ms(lc, load * cap, cores, shares)
    assert math.isfinite(latency)
    assert latency > 0


@given(
    cores_a=st.integers(1, 9),
    load=st.floats(0.1, 0.9, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_more_cores_never_increase_saturation(cores_a, load):
    lc = make_lc()
    assert capacity_qps(lc, cores_a + 1, FULL) >= capacity_qps(lc, cores_a, FULL) - 1e-9
