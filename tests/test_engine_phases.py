"""Behavioural tests for the engine's repair, refine, and confirm phases."""

import pytest

from repro.core import CLITEConfig, CLITEEngine

from conftest import make_node


def config_for_tests(**overrides):
    defaults = dict(
        seed=0,
        max_iterations=16,
        ei_min_iterations=4,
        post_qos_iterations=4,
        confirm_top=2,
        refine_budget=8,
        n_restarts=3,
    )
    defaults.update(overrides)
    return CLITEConfig(**defaults)


class TestRepairPhase:
    def test_repair_rounds_fire_when_start_violates(self, mini_server):
        """A heavy mix violates at the equal partition, so repair moves
        should appear in the trace."""
        node = make_node(mini_server, lc_loads=(0.8, 0.7), n_bg=1, noise=0.0)
        result = CLITEEngine(node, config_for_tests()).optimize()
        phases = [r.phase for r in result.samples]
        if not result.samples[0].observation.all_qos_met:
            assert "repair" in phases

    def test_repair_moves_are_single_transfers(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.8, 0.7), n_bg=1, noise=0.0)
        result = CLITEEngine(node, config_for_tests()).optimize()
        records = list(result.samples)
        for i, record in enumerate(records):
            if record.phase != "repair":
                continue
            # A repair config differs from the then-best config by one
            # transferred unit of one resource.
            prior_best = max(records[:i], key=lambda r: r.score)
            diff = abs(
                record.config.as_array() - prior_best.config.as_array()
            ).sum()
            assert diff == 2

    def test_no_repair_when_start_feasible(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.2, 0.2), n_bg=1, noise=0.0)
        result = CLITEEngine(node, config_for_tests()).optimize()
        assert result.samples[0].observation.all_qos_met
        assert all(r.phase != "repair" for r in result.samples)


class TestRefinePhase:
    def test_refine_improves_or_preserves_best(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=0.0)
        with_refine = CLITEEngine(node, config_for_tests()).optimize()
        node2 = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=0.0)
        without = CLITEEngine(
            node2, config_for_tests(refine_budget=0)
        ).optimize()
        assert with_refine.best_score >= without.best_score - 0.02

    def test_refine_respects_budget(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=0.0)
        result = CLITEEngine(
            node, config_for_tests(refine_budget=3)
        ).optimize()
        refines = [r for r in result.samples if r.phase == "refine"]
        assert len(refines) <= 3

    def test_refine_skipped_without_bg_jobs(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=0, noise=0.0)
        result = CLITEEngine(node, config_for_tests()).optimize()
        assert all(r.phase != "refine" for r in result.samples)

    def test_refine_configs_donate_from_lc_to_bg(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.2, 0.2), n_bg=1, noise=0.0)
        result = CLITEEngine(node, config_for_tests()).optimize()
        records = list(result.samples)
        bg_index = 2
        for i, record in enumerate(records):
            if record.phase != "refine":
                continue
            prior = max(
                (r for r in records[:i] if r.observation.all_qos_met),
                key=lambda r: r.score,
            )
            before = sum(prior.config.job_allocation(bg_index))
            after = sum(record.config.job_allocation(bg_index))
            # The BG job's total allocation never shrinks during refine.
            assert after >= before


class TestConfirmPhase:
    def test_confirm_samples_repeat_top_configs(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=0.02)
        result = CLITEEngine(node, config_for_tests()).optimize()
        confirms = [r for r in result.samples if r.phase == "confirm"]
        assert 1 <= len(confirms) <= 2
        earlier = {
            r.config.flat() for r in result.samples if r.phase != "confirm"
        }
        for record in confirms:
            assert record.config.flat() in earlier

    def test_best_config_comes_from_confirmed_set(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=0.02)
        result = CLITEEngine(node, config_for_tests()).optimize()
        confirmed = {
            r.config.flat() for r in result.samples if r.phase == "confirm"
        }
        assert result.best_config.flat() in confirmed


class TestNoiseRobustness:
    @pytest.mark.parametrize("noise", [0.0, 0.02, 0.08])
    def test_qos_held_under_noise(self, mini_server, noise):
        """Even with loud counters, the enacted partition truly meets
        QoS on a feasible mix (the confirmation pass's whole job)."""
        node = make_node(
            mini_server, lc_loads=(0.3, 0.3), n_bg=1, noise=noise, seed=5
        )
        result = CLITEEngine(node, config_for_tests(seed=5)).optimize()
        truth = node.true_performance(result.best_config)
        assert truth.all_qos_met

    def test_noise_spike_does_not_elect_fake_config(self, mini_server):
        """Inject a huge one-off counter spike; the winner must still be
        genuinely feasible."""
        node = make_node(
            mini_server, lc_loads=(0.5, 0.4), n_bg=1, noise=0.0, seed=1
        )
        original_read = node.counters.read
        calls = {"n": 0}

        def spiky_read(value, window_s=2.0):
            calls["n"] += 1
            if calls["n"] == 20:  # one wildly optimistic latency reading
                return value * 0.01
            return original_read(value, window_s)

        node.counters.read = spiky_read
        result = CLITEEngine(node, config_for_tests(seed=1)).optimize()
        node.counters.read = original_read
        truth = node.true_performance(result.best_config)
        assert truth.all_qos_met
