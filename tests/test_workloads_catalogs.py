"""Unit tests for the Tailbench and PARSEC workload catalogs (Table 3)."""

import pytest

from repro.resources import LLC_WAYS, MEMORY_BANDWIDTH, default_server
from repro.workloads import (
    BG_ACRONYMS,
    BG_NAMES,
    LC_NAMES,
    bg_workload,
    lc_workload,
    parsec_catalog,
    tailbench_catalog,
)


class TestTailbenchCatalog:
    def test_all_five_lc_workloads(self):
        catalog = tailbench_catalog()
        assert set(catalog) == set(LC_NAMES)
        assert len(catalog) == 5

    def test_calibrated_by_default(self):
        for workload in tailbench_catalog().values():
            assert workload.is_calibrated()
            assert workload.qos_latency_ms > 0
            assert workload.max_qps > 0

    def test_uncalibrated_option(self):
        raw = lc_workload("xapian", calibrated=False)
        assert not raw.is_calibrated()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown LC workload"):
            lc_workload("redis")

    def test_calibration_cached(self):
        server = default_server()
        a = lc_workload("img-dnn", server)
        b = lc_workload("img-dnn", server)
        assert a is b

    def test_memcached_is_fastest(self):
        catalog = tailbench_catalog()
        others = [w.max_qps for n, w in catalog.items() if n != "memcached"]
        assert catalog["memcached"].max_qps > max(others)

    def test_masstree_membw_dominant(self):
        """Paper: masstree is sensitive on memory bandwidth (Fig. 9)."""
        masstree = lc_workload("masstree", calibrated=False)
        assert masstree.profile.sensitivity(MEMORY_BANDWIDTH) > (
            masstree.profile.sensitivity(LLC_WAYS)
        )

    def test_img_dnn_llc_dominant(self):
        """Paper: img-dnn leans on cores and LLC more than bandwidth."""
        img = lc_workload("img-dnn", calibrated=False)
        assert img.profile.sensitivity(LLC_WAYS) > img.profile.sensitivity(
            MEMORY_BANDWIDTH
        )

    def test_every_lc_has_positive_serial_fraction(self):
        for name in LC_NAMES:
            assert lc_workload(name, calibrated=False).serial_fraction > 0


class TestParsecCatalog:
    def test_all_six_bg_workloads(self):
        catalog = parsec_catalog()
        assert set(catalog) == set(BG_NAMES)
        assert len(catalog) == 6

    def test_acronyms_cover_all(self):
        assert set(BG_ACRONYMS) == set(BG_NAMES)
        assert len(set(BG_ACRONYMS.values())) == 6

    def test_lookup_by_acronym(self):
        assert bg_workload("SC").name == "streamcluster"
        assert bg_workload("bs").name == "blackscholes"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown BG workload"):
            bg_workload("x264")

    def test_streamcluster_is_bandwidth_dominated(self):
        sc = bg_workload("streamcluster")
        assert sc.profile.sensitivity(MEMORY_BANDWIDTH) > sc.profile.sensitivity(
            LLC_WAYS
        )

    def test_compute_bound_jobs_insensitive_to_memory(self):
        for name in ("blackscholes", "swaptions"):
            workload = bg_workload(name)
            assert workload.profile.sensitivity(MEMORY_BANDWIDTH) <= 0.3
            assert workload.profile.sensitivity(LLC_WAYS) <= 0.3

    def test_canneal_cache_sensitive(self):
        cn = bg_workload("canneal")
        assert cn.profile.sensitivity(LLC_WAYS) >= 1.0

    def test_scalable_jobs_have_gentle_core_curves(self):
        """Embarrassingly parallel kernels keep near-linear core scaling."""
        bs = bg_workload("blackscholes")
        cn = bg_workload("canneal")
        assert bs.core_curve.shape < cn.core_curve.shape
