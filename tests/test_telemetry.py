"""Unit tests for repro.telemetry: clocks, metrics, tracer, exporters."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    NULL_TRACER,
    Histogram,
    MetricRegistry,
    NullMetricRegistry,
    SimulatedClock,
    Telemetry,
    Tracer,
    WallClock,
    prometheus_text,
    read_jsonl,
    render_series,
    telemetry_records,
    write_jsonl,
)
from repro.telemetry.tracer import NULL_SPAN


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_simulated_clock_only_moves_when_ticked(self):
        clock = SimulatedClock(start_s=5.0)
        assert clock.now() == 5.0
        assert clock.now() == 5.0
        assert clock.tick(2.5) == 7.5
        assert clock.now() == 7.5

    def test_simulated_clock_refuses_to_run_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            SimulatedClock().tick(-1.0)

    def test_wall_clock_is_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_telemetry_defaults_to_simulated_clock(self):
        assert isinstance(Telemetry.enabled().clock, SimulatedClock)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetricRegistry:
    def test_counter_accumulates_and_is_shared_by_name(self):
        registry = MetricRegistry()
        registry.counter("engine.samples").add()
        registry.counter("engine.samples").add(4)
        assert registry.counter_value("engine.samples") == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricRegistry().counter("c").add(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricRegistry()
        registry.gauge("node.load").set(0.3)
        registry.gauge("node.load").set(0.7)
        assert registry.snapshot()["node.load"]["value"] == 0.7

    def test_labels_split_series(self):
        registry = MetricRegistry()
        registry.counter("node.qos.violations", job="a").add(2)
        registry.counter("node.qos.violations", job="b").add(3)
        snapshot = registry.snapshot()
        assert snapshot['node.qos.violations{job="a"}']["value"] == 2.0
        assert snapshot['node.qos.violations{job="b"}']["value"] == 3.0
        assert registry.counter_value("node.qos.violations", job="a") == 2.0

    def test_invalid_name_rejected(self):
        registry = MetricRegistry()
        for bad in ("Engine.Samples", "9lives", "node load", "_x"):
            with pytest.raises(ValueError, match="must match"):
                registry.counter(bad)

    def test_kind_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_render_series_plain_and_labelled(self):
        assert render_series("a.b", ()) == "a.b"
        assert render_series("a.b", (("k", "v"),)) == 'a.b{k="v"}'

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricRegistry()

        def work():
            for _ in range(2000):
                registry.counter("hits").add()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter_value("hits") == 16000.0

    def test_null_registry_records_nothing(self):
        registry = NullMetricRegistry()
        # The bad name is the point: the null registry skips validation.
        registry.counter("anything goes, no validation").add(5)  # repro-lint: disable=RPL501
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2)
        assert registry.instruments() == []
        assert registry.snapshot() == {}
        assert registry.active is False


class TestHistogram:
    def test_quantiles_interpolate_and_clamp(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.6)
        assert hist.p50 <= hist.p95 <= hist.p99
        assert 0.5 <= hist.p50 <= 3.0
        assert hist.p99 <= 3.0  # clamped to observed max

    def test_empty_histogram_quantile_is_nan(self):
        assert math.isnan(Histogram("h").p50)

    def test_overflow_bucket_catches_everything(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.bucket_counts() == (0, 1)
        assert hist.p99 == 100.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("h").quantile(0.0)

    def test_default_buckets_sorted_distinct(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_timing_through_simulated_clock(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase", jobs=2):
            clock.tick(1.5)
        (record,) = tracer.finished()
        assert record.name == "phase"
        assert record.duration_s == pytest.approx(1.5)
        assert record.attributes["jobs"] == 2

    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()  # finish order: inner first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_threads_get_independent_stacks(self):
        tracer = Tracer()
        with tracer.span("main.outer"):
            worker_parent = []

            def work():
                with tracer.span("worker"):
                    pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        worker = next(r for r in tracer.finished() if r.name == "worker")
        assert worker.parent_id is None  # not a child of main.outer

    def test_exception_closes_span_with_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("risky"):
                raise RuntimeError("boom")
        (record,) = tracer.finished()
        assert record.attributes["error"] == "RuntimeError"

    def test_max_records_drops_instead_of_growing(self):
        tracer = Tracer(max_records=2)
        tracer.event("a")
        tracer.event("b")
        tracer.event("c")
        with tracer.span("late"):
            pass
        assert len(tracer.events()) == 2
        assert tracer.finished() == ()
        assert tracer.dropped == 2

    def test_finished_since_scopes_a_window(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        mark = tracer.finished_count
        with tracer.span("second"):
            pass
        (record,) = tracer.finished(since=mark)
        assert record.name == "second"

    def test_phase_totals(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        for _ in range(2):
            with tracer.span("p"):
                clock.tick(1.0)
        count, total = Tracer.phase_totals(tracer.finished())["p"]
        assert count == 2
        assert total == pytest.approx(2.0)

    def test_null_tracer_is_free_and_shared(self):
        # Deliberately bare: asserting the null span singleton identity.
        span = NULL_TRACER.span("anything")  # repro-lint: disable=RPL502
        assert span is NULL_SPAN
        with span as s:
            s.set("k", 1)
        NULL_TRACER.event("e")
        assert NULL_TRACER.finished() == ()
        assert NULL_TRACER.events() == ()


# ----------------------------------------------------------------------
# Facade + snapshot
# ----------------------------------------------------------------------
class TestTelemetryFacade:
    def test_null_telemetry_is_the_shared_disabled_context(self):
        assert Telemetry.disabled() is NULL_TELEMETRY
        assert NULL_TELEMETRY.active is False
        assert NULL_TELEMETRY.tracer is NULL_TRACER

    def test_snapshot_collects_all_kinds(self):
        tel = Telemetry.enabled()
        tel.metrics.counter("c").add(3)
        tel.metrics.gauge("g").set(2.5)
        tel.metrics.histogram("h").observe(0.01)
        clock = tel.clock
        with tel.tracer.span("phase"):
            clock.tick(0.5)
        tel.tracer.event("evt", detail="x")
        snap = tel.snapshot()
        assert snap.counters == {"c": 3.0}
        assert snap.gauges == {"g": 2.5}
        assert snap.histograms["h"]["count"] == 1
        assert snap.phase_seconds["phase"] == pytest.approx(0.5)
        assert snap.phase_counts["phase"] == 1
        assert snap.span_count == 1
        assert snap.event_count == 1
        assert snap.dropped == 0

    def test_snapshot_spans_since_scopes_phases_not_metrics(self):
        tel = Telemetry.enabled()
        tel.metrics.counter("c").add()
        with tel.tracer.span("early"):
            pass
        mark = tel.tracer.finished_count
        with tel.tracer.span("late"):
            pass
        snap = tel.snapshot(spans_since=mark)
        assert set(snap.phase_counts) == {"late"}
        assert snap.counters == {"c": 1.0}  # registry stays cumulative


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def recording_telemetry():
    tel = Telemetry.enabled()
    with tel.tracer.span("engine.optimize", jobs=2):
        tel.clock.tick(1.0)
        tel.metrics.counter("engine.samples").add(7)
    tel.tracer.event("qos.violation", job="img-dnn")
    tel.metrics.histogram("window.s").observe(0.2)
    return tel


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tel = recording_telemetry()
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(tel, path)
        assert lines == path.read_text().count("\n")
        records = read_jsonl(path)
        assert len(records) == lines
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "event", "metric"}
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "engine.optimize"
        assert span["duration_s"] == pytest.approx(1.0)
        assert span["attributes"] == {"jobs": 2}

    def test_records_stream_spans_then_events_then_metrics(self):
        types = [r["type"] for r in telemetry_records(recording_telemetry())]
        assert types == sorted(
            types, key=["span", "event", "metric"].index
        )

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_jsonl(path)
        path.write_text('{"no_type": 1}\n')
        with pytest.raises(ValueError, match="not a telemetry record"):
            read_jsonl(path)

    def test_prometheus_text_format(self):
        tel = recording_telemetry()
        text = prometheus_text(tel.metrics)
        assert "# TYPE engine_samples counter" in text
        assert "engine_samples 7.0" in text
        assert "# TYPE window_s histogram" in text
        assert 'window_s_bucket{le="+Inf"} 1' in text
        assert "window_s_count 1" in text
        assert "." not in text.split()[2]  # dots sanitized out of names

    def test_prometheus_empty_registry_is_empty_string(self):
        assert prometheus_text(MetricRegistry()) == ""

    def test_jsonl_is_valid_json_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(recording_telemetry(), path)
        for line in path.read_text().splitlines():
            json.loads(line)
