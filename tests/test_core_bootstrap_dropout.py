"""Unit tests for bootstrap sampling and dropout-copy."""

import numpy as np
import pytest

from repro.core import (
    DropoutCopy,
    ScoreFunction,
    bootstrap_configurations,
    job_performance,
    run_bootstrap,
)

from conftest import make_node


class TestBootstrapConfigurations:
    def test_count_is_jobs_plus_one(self, quiet_node):
        configs = bootstrap_configurations(quiet_node.space)
        assert len(configs) == quiet_node.n_jobs + 1

    def test_first_is_equal_partition(self, quiet_node):
        configs = bootstrap_configurations(quiet_node.space)
        assert configs[0] == quiet_node.space.equal_partition()

    def test_extrema_per_job(self, quiet_node):
        configs = bootstrap_configurations(quiet_node.space)
        for j in range(quiet_node.n_jobs):
            assert configs[1 + j] == quiet_node.space.max_allocation(j)


class TestRunBootstrap:
    def test_records_baselines(self, quiet_node):
        fn = ScoreFunction()
        run_bootstrap(quiet_node, fn)
        assert fn.iso_bg_perf("bg0") is not None
        assert fn.iso_lc_latency("lc0") is not None

    def test_observations_consumed(self, quiet_node):
        fn = ScoreFunction()
        result = run_bootstrap(quiet_node, fn)
        assert quiet_node.samples_taken == quiet_node.n_jobs + 1
        assert len(result.scores) == quiet_node.n_jobs + 1

    def test_feasible_jobs_not_flagged(self, quiet_node):
        result = run_bootstrap(quiet_node, ScoreFunction())
        assert result.infeasible_jobs == ()

    def test_impossible_job_flagged(self, mini_server):
        # An LC job at a load its own max allocation cannot satisfy:
        # load > 1 is disallowed, so use a tight QoS instead.
        from repro.server import Job, Node, PerformanceCounters
        from conftest import make_bg, make_lc

        impossible = make_lc("doomed", qos_latency_ms=0.0001, max_qps=2000.0)
        node = Node(
            mini_server,
            [Job.lc(impossible, 0.9), Job.bg(make_bg())],
            counters=PerformanceCounters(relative_std=0.0),
        )
        result = run_bootstrap(node, ScoreFunction())
        assert result.infeasible_jobs == ("doomed",)


class TestJobPerformance:
    def test_lc_performance_is_qos_ratio(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        perf = job_performance(obs, "lc0")
        assert perf == pytest.approx(obs.job("lc0").qos_ratio)

    def test_bg_performance_is_normalized_throughput(self, quiet_node):
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        perf = job_performance(obs, "bg0")
        assert perf == pytest.approx(
            min(1.0, obs.job("bg0").throughput_norm)
        )


class TestDropoutCopy:
    def test_no_decision_before_updates(self, quiet_node):
        dropout = DropoutCopy(rng=np.random.default_rng(0))
        decision = dropout.choose(quiet_node)
        assert decision.job_index is None

    def test_disabled_returns_none(self, quiet_node):
        dropout = DropoutCopy(enabled=False, rng=np.random.default_rng(0))
        obs = quiet_node.true_performance(quiet_node.space.equal_partition())
        dropout.update(obs.config, obs, quiet_node)
        assert dropout.choose(quiet_node).job_index is None

    def test_picks_best_performer(self, quiet_node):
        dropout = DropoutCopy(random_job_prob=0.0, rng=np.random.default_rng(0))
        config = quiet_node.space.equal_partition()
        obs = quiet_node.true_performance(config)
        dropout.update(config, obs, quiet_node)
        decision = dropout.choose(quiet_node)
        names = quiet_node.job_names()
        perfs = [job_performance(obs, n) for n in names]
        assert decision.job_index == int(np.argmax(perfs))
        assert decision.allocation == config.job_allocation(decision.job_index)

    def test_pins_best_allocation_not_latest(self, quiet_node):
        dropout = DropoutCopy(random_job_prob=0.0, rng=np.random.default_rng(0))
        good = quiet_node.space.max_allocation(0)  # lc0 at its best
        bad = quiet_node.space.max_allocation(2)  # lc0 starved
        dropout.update(good, quiet_node.true_performance(good), quiet_node)
        dropout.update(bad, quiet_node.true_performance(bad), quiet_node)
        decision = dropout.choose(quiet_node)
        if decision.job_index == 0:
            assert decision.allocation == good.job_allocation(0)

    def test_random_pick_with_probability_one(self, quiet_node):
        dropout = DropoutCopy(random_job_prob=1.0, rng=np.random.default_rng(1))
        config = quiet_node.space.equal_partition()
        dropout.update(config, quiet_node.true_performance(config), quiet_node)
        picks = {dropout.choose(quiet_node).job_index for _ in range(40)}
        assert len(picks) > 1  # random picks scatter across jobs

    def test_best_performance_tracked(self, quiet_node):
        dropout = DropoutCopy(rng=np.random.default_rng(0))
        config = quiet_node.space.equal_partition()
        obs = quiet_node.true_performance(config)
        dropout.update(config, obs, quiet_node)
        assert dropout.best_performance("lc0") == pytest.approx(
            job_performance(obs, "lc0")
        )

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DropoutCopy(random_job_prob=1.5)
