"""End-to-end checks of the paper's headline claims (scaled for test time).

These run the real catalogs on the Table 2 server and assert the
qualitative results of Sec. 5: who wins, in which regimes — the "shape"
of the evaluation rather than its absolute numbers.
"""

import pytest

from repro.experiments import MixSpec, run_trial
from repro.schedulers import (
    CLITEPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    RandomPlusPolicy,
)
from repro.server import NodeBudget

BUDGET = NodeBudget(70)


@pytest.fixture(scope="module")
def medium_mix():
    return MixSpec.of(
        lc=[("img-dnn", 0.5), ("memcached", 0.5), ("masstree", 0.3)],
        bg=["streamcluster"],
    )


@pytest.fixture(scope="module")
def hard_mix():
    """A mix needing joint multi-resource exploration (Sec. 2's point)."""
    return MixSpec.of(
        lc=[("img-dnn", 0.7), ("masstree", 0.6), ("memcached", 0.3)],
        bg=["blackscholes"],
    )


@pytest.fixture(scope="module")
def clite_medium(medium_mix):
    return run_trial(medium_mix, CLITEPolicy(seed=1), seed=1, budget=BUDGET)


@pytest.fixture(scope="module")
def parties_medium(medium_mix):
    return run_trial(medium_mix, PartiesPolicy(), seed=1, budget=BUDGET)


@pytest.fixture(scope="module")
def oracle_medium(medium_mix):
    return run_trial(
        medium_mix, OraclePolicy(max_enumeration=20_000), seed=1, budget=BUDGET
    )


class TestHeadlineClaims:
    def test_clite_meets_qos_on_medium_mix(self, clite_medium):
        assert clite_medium.qos_met

    def test_clite_beats_parties_on_bg_performance(
        self, clite_medium, parties_medium
    ):
        """Fig. 13: CLITE leaves the BG job far better off than PARTIES."""
        assert clite_medium.mean_bg_performance > parties_medium.mean_bg_performance

    def test_oracle_bounds_clite(self, clite_medium, oracle_medium):
        assert oracle_medium.qos_met
        assert (
            oracle_medium.mean_bg_performance
            >= clite_medium.mean_bg_performance - 0.02
        )

    def test_clite_near_oracle(self, clite_medium, oracle_medium):
        """Figs. 12-14: CLITE lands within a modest factor of ORACLE."""
        ratio = clite_medium.mean_bg_performance / oracle_medium.mean_bg_performance
        assert ratio > 0.6

    def test_clite_colocates_where_parties_fails(self, hard_mix):
        """Figs. 7-9: joint exploration finds partitions trial-and-error
        cannot."""
        clite = run_trial(hard_mix, CLITEPolicy(seed=2), seed=2, budget=BUDGET)
        parties = run_trial(hard_mix, PartiesPolicy(), seed=2, budget=BUDGET)
        assert clite.qos_met
        assert not parties.qos_met

    def test_heracles_cannot_handle_multiple_lc(self, hard_mix):
        """Fig. 7: Heracles guards only its first LC job, so a mix whose
        other LC jobs carry real load slips through its fingers."""
        heracles = run_trial(hard_mix, HeraclesPolicy(), seed=1, budget=BUDGET)
        assert not heracles.qos_met

    def test_random_plus_wastes_its_budget(self, medium_mix, clite_medium):
        rand = run_trial(
            medium_mix, RandomPlusPolicy(seed=1), seed=1, budget=BUDGET
        )
        assert rand.samples >= clite_medium.samples
        if rand.qos_met:
            assert rand.mean_bg_performance <= clite_medium.mean_bg_performance


class TestFullServer:
    def test_six_resource_partitioning_end_to_end(self):
        from repro.resources import full_server

        mix = MixSpec.of(lc=[("img-dnn", 0.3), ("xapian", 0.3)], bg=["canneal"])
        trial = run_trial(
            mix,
            CLITEPolicy(seed=0),
            seed=0,
            budget=NodeBudget(40),
            server=full_server(),
        )
        assert trial.result.best_config is not None
        assert trial.result.best_config.n_resources == 6
        assert trial.qos_met
