"""Vectorized optimizer internals vs their scalar references, and the
acquisition-floor fix.

``_round_batch`` / ``_repair_caps_batch`` are speed rewrites of
``_round`` / ``_repair_caps``; every batch row must match the scalar
result exactly (same rounding, same waterfall, same tie-breaks).  And
``propose`` must report a faithful ``max_acquisition`` even when the
acquisition function goes negative — the old 0.0 seed silently floored
the termination signal.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AcquisitionOptimizer,
    DropoutDecision,
    GaussianProcess,
    Proposal,
    UpperConfidenceBound,
)
from repro.resources import ConfigurationSpace, Resource, ServerSpec


@st.composite
def space_opt_rng(draw):
    n_res = draw(st.integers(2, 3))
    n_jobs = draw(st.integers(2, 4))
    units = [draw(st.integers(n_jobs + 1, n_jobs + 7)) for _ in range(n_res)]
    server = ServerSpec(
        resources=tuple(Resource(f"r{i}", u) for i, u in enumerate(units))
    )
    space = ConfigurationSpace(server, n_jobs)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return space, AcquisitionOptimizer(space, rng=rng), rng


def _satisfiable_caps(space, rng, extra):
    caps = np.empty((space.n_jobs, space.n_resources))
    for r, resource in enumerate(space.spec.resources):
        fair = resource.units // space.n_jobs
        caps[:, r] = max(fair, 1) + extra
        while caps[:, r].sum() < resource.units:
            caps[np.argmin(caps[:, r]), r] += 1
    return caps


@given(data=space_opt_rng(), with_pin=st.booleans())
@settings(max_examples=60, deadline=None)
def test_round_batch_matches_scalar(data, with_pin):
    space, opt, rng = data
    dropout = None
    if with_pin:
        pinned = space.random(rng)
        pin_job = int(rng.integers(space.n_jobs))
        dropout = DropoutDecision(
            job_index=pin_job, allocation=pinned.job_allocation(pin_job)
        )
    z = rng.random((8, space.n_dims))
    batch = opt._round_batch(z, dropout)
    for i in range(len(z)):
        scalar = opt._round(z[i], dropout)
        np.testing.assert_array_equal(batch[i], scalar.as_array())


@given(
    data=space_opt_rng(),
    cap_extra=st.integers(0, 3),
    with_pin=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_repair_caps_batch_matches_scalar(data, cap_extra, with_pin):
    space, opt, rng = data
    dropout = None
    if with_pin:
        pinned = space.random(rng)
        pin_job = int(rng.integers(space.n_jobs))
        dropout = DropoutDecision(
            job_index=pin_job, allocation=pinned.job_allocation(pin_job)
        )
    caps = _satisfiable_caps(space, rng, cap_extra)
    configs = [space.random(rng) for _ in range(10)]
    mats = np.array([c.as_array() for c in configs])
    batch = opt._repair_caps_batch(mats, caps, dropout)
    for i, config in enumerate(configs):
        scalar = opt._repair_caps(config, caps, dropout)
        np.testing.assert_array_equal(batch[i], scalar.as_array())


def test_repair_caps_batch_none_caps_is_identity():
    server = ServerSpec(resources=(Resource("r0", 8), Resource("r1", 6)))
    space = ConfigurationSpace(server, 3)
    opt = AcquisitionOptimizer(space, rng=np.random.default_rng(0))
    mats = space.random_batch(5, np.random.default_rng(1))
    assert opt._repair_caps_batch(mats, None, None) is mats


def _fitted_gp(space, rng, y_offset=0.0):
    mats = space.random_batch(12, rng)
    x = space.to_unit_cube_batch(mats)
    y = rng.normal(size=len(x)) + y_offset
    return GaussianProcess().fit(x, y), x, y


def test_max_acquisition_can_go_negative():
    """With a negative-valued acquisition (UCB on a GP whose posterior
    mean is everywhere negative), ``propose`` must report the true
    negative maximum instead of the historical 0.0 floor."""
    server = ServerSpec(resources=(Resource("r0", 8), Resource("r1", 6)))
    space = ConfigurationSpace(server, 2)
    rng = np.random.default_rng(0)
    opt = AcquisitionOptimizer(
        space, acquisition=UpperConfidenceBound(kappa=0.0), rng=rng
    )
    gp, _, y = _fitted_gp(space, rng, y_offset=-50.0)
    proposal = opt.propose(gp, best_score=float(y.max()), sampled=set())
    assert proposal.max_acquisition < 0.0
    assert np.isfinite(proposal.max_acquisition)
    assert proposal.candidates  # negative utility still ranks candidates


def test_empty_max_seed_is_minus_inf():
    assert Proposal.EMPTY_MAX == float("-inf")


def test_propose_candidates_valid_and_ranked():
    server = ServerSpec(
        resources=(Resource("r0", 9), Resource("r1", 7), Resource("r2", 6))
    )
    space = ConfigurationSpace(server, 3)
    rng = np.random.default_rng(3)
    opt = AcquisitionOptimizer(space, rng=rng)
    gp, x, y = _fitted_gp(space, rng)
    sampled = {space.from_unit_cube(row).flat() for row in x}
    proposal = opt.propose(gp, best_score=float(y.max()), sampled=sampled)
    values = [c.acquisition_value for c in proposal.candidates]
    assert values == sorted(values, reverse=True)
    for candidate in proposal.candidates:
        space.validate(candidate.config)
        assert candidate.config.flat() not in sampled
