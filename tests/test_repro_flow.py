"""repro-flow: lock-order graph edge cases, the CLI report, and the
incremental lint cache."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import LintConfig
from repro.analysis.cache import LintCache, cache_key
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import LintEngine
from repro.analysis.flow import flow_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = REPO_ROOT / "src" / "repro"


def analyse(tmp_path, source, **overrides):
    path = tmp_path / "mod.py"
    path.write_text(source)
    config = LintConfig(**overrides)
    engine = LintEngine(config)
    project = engine.build_project([path])
    return flow_analysis(project, config)


# ----------------------------------------------------------------------
# Lock-order graph edge cases
# ----------------------------------------------------------------------
class TestLockOrderGraph:
    def test_rlock_self_edge_is_reentrant_not_a_cycle(self, tmp_path):
        """Self-guarding helpers re-taking an RLock are legal."""
        source = (
            "import threading\n"
            "class R:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        analysis = analyse(tmp_path, source)
        assert analysis.cycles == []
        assert "R._lock" in analysis.reentrant

    def test_plain_lock_reacquire_is_a_self_deadlock(self, tmp_path):
        source = (
            "import threading\n"
            "class L:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        analysis = analyse(tmp_path, source)
        assert len(analysis.cycles) == 1
        cycle = analysis.cycles[0]
        assert cycle.tokens == ("L._lock",)
        assert "re-acquired" in cycle.detail

    def test_conditional_acquisition_is_an_edge_not_a_cycle(self, tmp_path):
        """A lock taken on only one branch still orders after the outer
        lock; one direction alone must not read as a deadlock."""
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock_a = threading.Lock()\n"
            "        self._lock_b = threading.Lock()\n"
            "    def maybe(self, flag):\n"
            "        with self._lock_a:\n"
            "            if flag:\n"
            "                with self._lock_b:\n"
            "                    pass\n"
        )
        analysis = analyse(tmp_path, source)
        assert ("C._lock_a", "C._lock_b") in analysis.edges
        assert analysis.cycles == []

    def test_interprocedural_two_class_cycle(self, tmp_path):
        """A holds its lock and calls into B (which takes B's lock);
        B does the reverse.  Neither function shows both locks locally —
        only the call-graph closure sees the ABBA."""
        source = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def take(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def forward(self, b: 'B'):\n"
            "        with self._lock:\n"
            "            b.take()\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def take(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def backward(self, a: 'A'):\n"
            "        with self._lock:\n"
            "            a.take()\n"
        )
        analysis = analyse(tmp_path, source)
        assert ("A._lock", "B._lock") in analysis.edges
        assert ("B._lock", "A._lock") in analysis.edges
        assert len(analysis.cycles) == 1
        assert set(analysis.cycles[0].tokens) == {"A._lock", "B._lock"}

    def test_pool_entry_only_lock_lands_in_coverage(self, tmp_path):
        """A lock touched solely by a pool-dispatched worker must still
        appear in that entry point's lock coverage."""
        source = (
            "import threading\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "_pool_lock = threading.Lock()\n"
            "def work(x):\n"
            "    with _pool_lock:\n"
            "        return x\n"
            "def dispatch():\n"
            "    pool = ThreadPoolExecutor(max_workers=2)\n"
            "    try:\n"
            "        return pool.submit(work, 1)\n"
            "    finally:\n"
            "        pool.shutdown()\n"
        )
        analysis = analyse(tmp_path, source)
        entry_locks = {
            key.split(":")[-1]: locks
            for key, locks in analysis.entry_locks.items()
        }
        assert "work" in entry_locks
        assert any(
            token.endswith("._pool_lock") for token in entry_locks["work"]
        )

    def test_repo_graph_covers_all_three_pools(self):
        """Acceptance: verify_workers, the ObservationService pool, and
        the telemetry serve handler are all entry points of the graph."""
        config = LintConfig()
        engine = LintEngine(config)
        project = engine.build_project([PACKAGE])
        analysis = flow_analysis(project, config)
        qualnames = {key.split(":")[-1] for key in analysis.entry_locks}
        assert "verify_node" in qualnames          # verify_workers pool
        assert "Node.prime" in qualnames           # ObservationService pool
        assert "_MetricsHandler.do_GET" in qualnames  # telemetry serve
        assert analysis.cycles == []


# ----------------------------------------------------------------------
# repro-flow CLI
# ----------------------------------------------------------------------
def run_flow_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.flow_cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
    )


CYCLE_SOURCE = (
    "import threading\n"
    "class OrderA:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "    def tangle(self, other: 'OrderB'):\n"
    "        with self._lock:\n"
    "            with other._lock:\n"
    "                pass\n"
    "class OrderB:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "    def tangle(self, other: 'OrderA'):\n"
    "        with self._lock:\n"
    "            with other._lock:\n"
    "                pass\n"
)


class TestFlowCLI:
    def test_text_report_on_package(self):
        result = run_flow_cli(str(PACKAGE), "--check")
        assert result.returncode == 0, result.stderr
        assert "lock-order graph" in result.stdout
        assert "entry-point lock coverage" in result.stdout
        assert "cycles: none" in result.stdout
        assert "verify_node" in result.stdout

    def test_json_report_schema(self, tmp_path):
        (tmp_path / "mod.py").write_text(CYCLE_SOURCE)
        result = run_flow_cli(str(tmp_path / "mod.py"), "--format", "json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert set(payload) >= {
            "locks", "edges", "cycles", "entry_locks", "escapes", "blocking",
        }
        assert len(payload["cycles"]) == 1

    def test_check_fails_on_cycle(self, tmp_path):
        (tmp_path / "mod.py").write_text(CYCLE_SOURCE)
        result = run_flow_cli(str(tmp_path / "mod.py"), "--check")
        assert result.returncode == 1
        assert "CYCLES: 1" in result.stdout
        assert "cycle" in result.stderr

    def test_missing_path_is_usage_error(self, tmp_path):
        result = run_flow_cli(cwd=tmp_path)
        assert result.returncode == 2


# ----------------------------------------------------------------------
# Incremental lint cache
# ----------------------------------------------------------------------
SNIPPET = "import numpy as np\ngen = np.random.default_rng()\n"


class TestLintCache:
    def _run(self, capsys, *args):
        code = lint_main(list(args))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_second_identical_run_replays_from_cache(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(SNIPPET)
        code1, out1, err1 = self._run(
            capsys, "mod.py", "--select", "RPL101"
        )
        assert code1 == 1
        assert "cache hit" not in err1
        code2, out2, err2 = self._run(
            capsys, "mod.py", "--select", "RPL101"
        )
        assert code2 == 1
        assert "cache hit" in err2
        assert out2 == out1
        assert (tmp_path / ".repro-lint-cache.json").exists()

    def test_content_change_invalidates(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "mod.py"
        target.write_text(SNIPPET)
        self._run(capsys, "mod.py", "--select", "RPL101")
        target.write_text(SNIPPET + "# touched\n")
        code, _out, err = self._run(capsys, "mod.py", "--select", "RPL101")
        assert code == 1
        assert "cache hit" not in err

    def test_config_change_invalidates(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(SNIPPET)
        self._run(capsys, "mod.py", "--select", "RPL101")
        code, _out, err = self._run(
            capsys, "mod.py", "--select", "RPL103"
        )
        assert code == 0
        assert "cache hit" not in err

    def test_no_cache_flag_bypasses(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(SNIPPET)
        self._run(capsys, "mod.py", "--select", "RPL101")
        code, _out, err = self._run(
            capsys, "mod.py", "--select", "RPL101", "--no-cache"
        )
        assert code == 1
        assert "cache hit" not in err

    def test_corrupt_cache_file_is_a_miss(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(SNIPPET)
        (tmp_path / ".repro-lint-cache.json").write_text("{not json")
        code, _out, err = self._run(capsys, "mod.py", "--select", "RPL101")
        assert code == 1
        assert "cache hit" not in err

    def test_lookup_rejects_schema_mismatch(self, tmp_path):
        (tmp_path / "mod.py").write_text(SNIPPET)
        config = LintConfig()
        key = cache_key([tmp_path / "mod.py"], config)
        cache = LintCache(tmp_path / "cache.json")
        cache.store(key, [])
        assert cache.lookup(key) == []
        stale = dict(key, schema=-1)
        assert cache.lookup(stale) is None
