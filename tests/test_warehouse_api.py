"""HTTP control plane and the repro-warehouse CLI."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.telemetry import Telemetry
from repro.warehouse import (
    GatewayCommand,
    ServiceGateway,
    WarehouseService,
    job_from_spec,
    make_api_server,
)
from repro.warehouse.cli import main


class TestJobFromSpec:
    def test_lc_constant_load(self):
        command = job_from_spec(
            {"workload": "memcached", "name": "mc-1", "load": 0.6, "at": 9.0}
        )
        assert command.kind == "submit"
        assert command.name == "mc-1"
        assert command.at_s == 9.0
        assert command.job.is_lc
        assert command.job.load_at(0.0) == pytest.approx(0.6)

    def test_lc_step_schedule(self):
        command = job_from_spec(
            {"workload": "xapian", "schedule": [[0, 0.3], [120, 0.9]]}
        )
        assert command.job.load_at(0.0) == pytest.approx(0.3)
        assert command.job.load_at(120.0) == pytest.approx(0.9)
        assert command.name == "xapian"
        assert command.at_s is None

    def test_bg(self):
        command = job_from_spec({"workload": "canneal"})
        assert not command.job.is_lc

    @pytest.mark.parametrize(
        "spec, message",
        [
            ({}, "workload"),
            ({"workload": "not-a-thing"}, "unknown workload"),
            ({"workload": "canneal", "load": 0.5}, "neither"),
            ({"workload": "memcached", "load": "high"}, "number"),
            ({"workload": "memcached", "schedule": [[1, 2, 3]]}, "schedule"),
            ({"workload": "memcached", "name": ""}, "name"),
            ({"workload": "memcached", "at": "now"}, "'at'"),
        ],
    )
    def test_bad_specs_raise(self, spec, message):
        with pytest.raises(ValueError, match=message):
            job_from_spec(spec)


class TestServiceGateway:
    def test_drain_returns_commands_in_order_once(self):
        gateway = ServiceGateway()
        gateway.enqueue(GatewayCommand(kind="depart", name="a"))
        gateway.enqueue(GatewayCommand(kind="depart", name="b"))
        drained = gateway.drain()
        assert [c.name for c in drained] == ["a", "b"]
        assert gateway.drain() == []

    def test_publish_replaces_status(self):
        gateway = ServiceGateway()
        assert json.loads(gateway.status_bytes()) == {}
        gateway.publish({"jobs_running": 3})
        assert json.loads(gateway.status_bytes()) == {"jobs_running": 3}

    def test_published_snapshot_is_immune_to_later_mutation(self):
        """publish() encodes under the lock; the caller keeping (and
        trashing) the dict must not change what /status serves."""
        gateway = ServiceGateway()
        status = {"jobs_running": 3, "nodes": [0, 1]}
        gateway.publish(status)
        status["jobs_running"] = -1
        status["nodes"].append(99)
        status.clear()
        assert json.loads(gateway.status_bytes()) == {
            "jobs_running": 3,
            "nodes": [0, 1],
        }


@pytest.fixture
def api_server():
    telemetry = Telemetry.enabled()
    telemetry.metrics.counter("warehouse.arrivals").add(2)
    gateway = ServiceGateway()
    server = make_api_server(gateway, telemetry.metrics)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield gateway, server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.read()


def _post(url, payload):
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=5.0) as response:
        return response.status, json.loads(response.read())


class TestHTTPEndpoints:
    def test_status_serves_published_snapshot(self, api_server):
        gateway, server = api_server
        gateway.publish({"jobs_running": 7, "time_s": 42.0})
        status, body = _get(f"{server.url}/status")
        assert status == 200
        assert json.loads(body)["jobs_running"] == 7

    def test_metrics_mounted_alongside(self, api_server):
        _, server = api_server
        status, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert b"warehouse_arrivals 2.0" in body

    def test_submit_and_depart_queue_commands(self, api_server):
        gateway, server = api_server
        status, reply = _post(
            f"{server.url}/submit", {"workload": "canneal", "name": "bg-1"}
        )
        assert status == 202 and reply == {"queued": "submit", "name": "bg-1"}
        status, reply = _post(
            f"{server.url}/depart", {"name": "bg-1", "at": 50.0}
        )
        assert status == 202 and reply == {"queued": "depart", "name": "bg-1"}
        commands = gateway.drain()
        assert [c.kind for c in commands] == ["submit", "depart"]
        assert commands[1].at_s == 50.0

    def test_bad_requests_are_400(self, api_server):
        _, server = api_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{server.url}/submit", b"{not json")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{server.url}/submit", {"workload": "nope"})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{server.url}/depart", {"name": 3})
        assert err.value.code == 400

    def test_unknown_paths_are_404(self, api_server):
        _, server = api_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{server.url}/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{server.url}/reboot", {})
        assert err.value.code == 404


class TestGatewayDrivesService:
    def test_submitted_jobs_reach_the_scheduler(self, mini_server):
        from repro.warehouse.cli import _apply_gateway

        service = WarehouseService(4)
        gateway = ServiceGateway()
        gateway.enqueue(job_from_spec({"workload": "canneal", "name": "x"}))
        gateway.enqueue(job_from_spec({"workload": "memcached", "at": 5.0}))
        _apply_gateway(service, gateway)
        service.run_until(10.0)
        gateway.publish(service.status())
        published = json.loads(gateway.status_bytes())
        assert published["jobs_running"] == 2
        assert set(service.placements()) == {"x", "memcached"}

    def test_past_requests_are_clamped_to_now(self):
        from repro.warehouse.cli import _apply_gateway

        service = WarehouseService(2)
        service.run_until(100.0)
        gateway = ServiceGateway()
        gateway.enqueue(
            job_from_spec({"workload": "canneal", "name": "late", "at": 3.0})
        )
        _apply_gateway(service, gateway)  # must not raise "in the past"
        service.run_until(101.0)
        assert service.has_job("late")


class TestCLI:
    def test_run_check_is_deterministic(self, capsys):
        assert main(["run", "--check"]) == 0
        out = capsys.readouterr().out
        assert "warehouse check: OK" in out

    def test_run_text_report(self, capsys):
        code = main(
            ["run", "--nodes", "10", "--jobs", "6", "--duration", "120",
             "--report-every", "60", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs=" in out and "qos=" in out

    def test_run_json_report(self, capsys):
        code = main(
            ["run", "--nodes", "10", "--jobs", "6", "--duration", "120",
             "--shards", "2", "--json", "--seed", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["final"]["arrivals"] == 6
        assert len(payload["rows"]) >= 1

    def test_run_rejects_bad_shapes(self, capsys):
        assert main(["run", "--nodes", "2", "--shards", "3"]) == 2
        assert main(["run", "--nodes", "0"]) == 2

    def test_run_with_store_and_clite_probe(self, tmp_path, capsys):
        store = tmp_path / "obs.jsonl"
        code = main(
            ["run", "--nodes", "4", "--jobs", "3", "--duration", "60",
             "--probe", "clite", "--store", str(store), "--seed", "2"]
        )
        assert code == 0
        assert store.exists()
