"""repro-lint: rule behavior on the fixture corpus, reporters, CLI,
and the meta-check that the package's own tree lints clean."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    load_config,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.model import all_rules

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = REPO_ROOT / "src" / "repro"


def fixture_config(**overrides) -> LintConfig:
    """A config retargeted at the fixture corpus' class names."""
    base = dict(
        hot_path=("",),  # numerics rules apply everywhere
        shared_types=("SharedState",),
        placement_bases=("PlacementPolicy",),
        policy_bases=("Policy",),
        optimizer_classes=("AcquisitionOptimizer",),
        partition_constructors=(),  # opt in per test (drift rule)
        frozen_key_classes=("CacheKey",),
    )
    base.update(overrides)
    return LintConfig(**base)


def lint_fixture(filename: str, **overrides):
    return run_lint([FIXTURES / filename], fixture_config(**overrides))


def rule_ids(findings) -> list:
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# Determinism family
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_bad_fixture_triggers_all_four_rules(self):
        findings = lint_fixture("determinism_bad.py")
        assert sorted(set(rule_ids(findings))) == [
            "RPL101",
            "RPL102",
            "RPL103",
            "RPL104",
        ]

    def test_good_fixture_is_clean(self):
        assert lint_fixture("determinism_good.py") == []

    def test_unseeded_rng_message_points_at_call(self):
        (finding,) = [
            f for f in lint_fixture("determinism_bad.py")
            if f.rule_id == "RPL101"
        ]
        assert "default_rng" in finding.message
        assert finding.line > 1
        assert finding.path.endswith("determinism_bad.py")

    def test_seeded_default_rng_not_flagged(self, tmp_path):
        snippet = tmp_path / "seeded.py"
        snippet.write_text(
            "import numpy as np\n"
            "gen = np.random.default_rng(42)\n"
            "other = np.random.default_rng(seed=7)\n"
        )
        assert run_lint([snippet], fixture_config()) == []


# ----------------------------------------------------------------------
# Thread-safety family
# ----------------------------------------------------------------------
class TestThreadSafetyRules:
    def test_bad_fixture_flags_shared_mutation(self):
        findings = [
            f for f in lint_fixture("threadsafety_bad.py")
            if f.rule_id == "RPL201"
        ]
        messages = "\n".join(f.message for f in findings)
        # direct attribute + item writes, the transitive helper, the global
        assert len(findings) >= 4
        assert "reachable from thread-pool entry point 'worker'" in messages
        assert "'helper'" in messages  # call-path rendering
        assert "module global" in messages

    def test_bad_fixture_flags_setattr_backdoor(self):
        findings = [
            f for f in lint_fixture("threadsafety_bad.py")
            if f.rule_id == "RPL203"
        ]
        assert len(findings) == 1
        assert "thaw" in findings[0].message

    def test_good_fixture_is_clean(self):
        assert lint_fixture("threadsafety_good.py") == []

    def test_frozen_key_rules(self):
        findings = lint_fixture("frozen_bad.py")
        assert rule_ids(findings) == ["RPL202", "RPL202"]
        messages = "\n".join(f.message for f in findings)
        assert "CacheKey" in messages  # configured class not frozen
        assert "LooseKey" in messages  # unfrozen instance in key position
        assert lint_fixture("frozen_good.py") == []


# ----------------------------------------------------------------------
# Contract-presence family
# ----------------------------------------------------------------------
class TestContractRules:
    def test_bad_fixture_triggers_all_four_rules(self):
        findings = lint_fixture(
            "contracts_bad.py", partition_constructors=("Space.make",)
        )
        assert sorted(rule_ids(findings)) == [
            "RPL301",
            "RPL302",
            "RPL303",
            "RPL304",
        ]

    def test_good_fixture_is_clean(self):
        assert (
            lint_fixture(
                "contracts_good.py", partition_constructors=("Space.make",)
            )
            == []
        )

    def test_configured_constructor_drift_is_a_finding(self):
        findings = lint_fixture(
            "determinism_good.py",
            partition_constructors=("Space.vanished",),
            select=("RPL304",),
        )
        assert rule_ids(findings) == ["RPL304"]
        assert "not found" in findings[0].message


# ----------------------------------------------------------------------
# Numerics family
# ----------------------------------------------------------------------
class TestNumericsRules:
    def test_bad_fixture(self):
        findings = lint_fixture("numerics_bad.py")
        assert sorted(rule_ids(findings)) == ["RPL401", "RPL402", "RPL402"]

    def test_good_fixture_is_clean(self):
        assert lint_fixture("numerics_good.py") == []

    def test_rules_scoped_to_hot_path(self):
        # Same bad file, but a hot_path that doesn't match it: silent.
        findings = lint_fixture(
            "numerics_bad.py", hot_path=("repro/core/",)
        )
        assert findings == []


# ----------------------------------------------------------------------
# Telemetry family
# ----------------------------------------------------------------------
class TestTelemetryRules:
    def test_bad_fixture_triggers_both_rules(self):
        findings = lint_fixture("telemetry_bad.py")
        assert sorted(rule_ids(findings)) == [
            "RPL501",
            "RPL501",
            "RPL501",
            "RPL502",
        ]

    def test_good_fixture_is_clean(self):
        assert lint_fixture("telemetry_good.py") == []

    def test_metric_name_message_quotes_the_literal(self):
        findings = [
            f for f in lint_fixture("telemetry_bad.py")
            if f.rule_id == "RPL501"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "'Engine.Samples'" in messages
        assert "'node load'" in messages
        assert "'9th_window'" in messages

    def test_span_rule_ignores_non_tracer_span_methods(self, tmp_path):
        snippet = tmp_path / "other_span.py"
        snippet.write_text(
            "def f(layout):\n"
            "    return layout.span(3)\n"  # not a tracer: silent
        )
        assert run_lint([snippet], fixture_config()) == []


# ----------------------------------------------------------------------
# Dataflow family (interprocedural taint + locksets)
# ----------------------------------------------------------------------
class TestDataflowRules:
    GUARDED = dict(guarded_classes=("GuardedCache",))

    def test_bad_fixture_triggers_all_three_rules(self):
        findings = lint_fixture("dataflow_bad.py", **self.GUARDED)
        assert {"RPL601", "RPL602", "RPL603"} <= set(rule_ids(findings))

    def test_good_fixture_is_clean(self):
        findings = lint_fixture("dataflow_good.py", **self.GUARDED)
        assert [f for f in findings if f.rule_id.startswith("RPL6")] == [], (
            render_text(findings)
        )

    def test_rpl601_sees_what_rpl10x_misses(self):
        """The acceptance regression: ``Generator(PCG64())`` never
        mentions ``default_rng``, so the per-file determinism rules stay
        silent — only the taint analysis catches the fresh-entropy flow."""
        per_file = lint_fixture(
            "dataflow_bad.py", select=("RPL101", "RPL102", "RPL103", "RPL104")
        )
        assert per_file == [], render_text(per_file)
        dataflow = lint_fixture("dataflow_bad.py", select=("RPL601",))
        assert {f.rule_id for f in dataflow} == {"RPL601"}
        assert len(dataflow) >= 3  # local, field, and payload laundering

    def test_rpl601_flags_each_laundering_channel(self):
        findings = lint_fixture("dataflow_bad.py", select=("RPL601",))
        messages = "\n".join(f.message for f in findings)
        assert "consume" in messages
        lines = {f.line for f in findings}
        assert len(lines) >= 3

    def test_rpl602_names_the_offending_class(self):
        findings = lint_fixture("dataflow_bad.py", select=("RPL602",))
        assert len(findings) == 1
        assert "StubTimer" in findings[0].message
        assert "measure" in findings[0].message

    def test_rpl603_unlocked_and_one_branch_writes(self):
        findings = lint_fixture(
            "dataflow_bad.py", select=("RPL603",), **self.GUARDED
        )
        assert len(findings) == 2
        assert all("GuardedCache" in f.message for f in findings)

    def test_rpl603_respects_both_branch_acquire(self):
        """dataflow_good's ``branchy`` acquires on both arms of the if;
        the per-path intersection must treat the join as locked."""
        findings = lint_fixture(
            "dataflow_good.py", select=("RPL603",), **self.GUARDED
        )
        assert findings == [], render_text(findings)

    def test_rpl201_skips_lock_guarded_shared_writes(self):
        """Lock-guarded mutation of a shared-typed parameter is RPL603's
        domain; RPL201 must no longer flag it."""
        findings = lint_fixture("dataflow_good.py", select=("RPL201",))
        assert findings == [], render_text(findings)

    def test_rpl603_disabled_outside_guarded_classes(self):
        # Without the GuardedCache override, the default guarded set
        # (MetricRegistry & co.) matches nothing in the fixture.
        findings = lint_fixture("dataflow_bad.py", select=("RPL603",))
        assert findings == []


# ----------------------------------------------------------------------
# Units family (abstract interpretation)
# ----------------------------------------------------------------------
class TestUnitsRules:
    UNITS_IDS = ("RPL701", "RPL702", "RPL703", "RPL704", "RPL705")
    #: Retargets RPL705 at the fixture's registered signature and brings
    #: the fixture path into the units-modules scope.
    OVERRIDES = dict(
        select=UNITS_IDS,
        units=("knee_latency.return=Millis",),
        units_modules=("",),
    )

    def test_bad_fixture_triggers_all_five_rules(self):
        findings = lint_fixture("units_bad.py", **self.OVERRIDES)
        assert sorted(set(rule_ids(findings))) == sorted(self.UNITS_IDS), (
            render_text(findings)
        )

    def test_good_fixture_is_clean(self):
        findings = lint_fixture("units_good.py", **self.OVERRIDES)
        assert findings == [], render_text(findings)

    def test_rpl701_names_both_domains(self):
        findings = lint_fixture(
            "units_bad.py", **{**self.OVERRIDES, "select": ("RPL701",)}
        )
        assert len(findings) == 1
        assert "Seconds" in findings[0].message
        assert "Millis" in findings[0].message

    def test_rpl704_is_not_a_generic_cross_domain_finding(self):
        """The s-vs-ms comparison gets the dedicated time rule, not RPL701."""
        findings = lint_fixture(
            "units_bad.py", **{**self.OVERRIDES, "select": ("RPL704",)}
        )
        assert len(findings) == 1
        assert "qos_ok" in findings[0].message or "compar" in findings[0].message

    def test_rpl702_requires_finite_escape_evidence(self):
        findings = lint_fixture(
            "units_bad.py", **{**self.OVERRIDES, "select": ("RPL702",)}
        )
        assert len(findings) == 1
        assert "[0, 1]" in findings[0].message

    def test_rpl703_floor_violation_fires_by_default(self):
        findings = lint_fixture(
            "units_bad.py", **{**self.OVERRIDES, "select": ("RPL703",)}
        )
        assert len(findings) == 1  # only the zero-floor literal

    def test_rpl703_capacity_sums_are_opt_in(self):
        capacities = ("cores=10", "llc=8")
        with_caps = lint_fixture(
            "units_bad.py",
            **{
                **self.OVERRIDES,
                "select": ("RPL703",),
                "units_capacities": capacities,
            },
        )
        # zero-floor literal + the (9, 8)-sum literal vs (10, 8) capacity
        assert len(with_caps) == 2
        good = lint_fixture(
            "units_good.py",
            **{
                **self.OVERRIDES,
                "select": ("RPL703",),
                "units_capacities": capacities,
            },
        )
        assert good == [], render_text(good)

    def test_rpl705_skipped_outside_units_modules(self):
        findings = lint_fixture(
            "units_bad.py",
            **{**self.OVERRIDES, "units_modules": ("src/repro/",)},
        )
        assert "RPL705" not in set(rule_ids(findings))

    def test_suppression_silences_units_finding(self, tmp_path):
        snippet = tmp_path / "suppressed_units.py"
        snippet.write_text(
            "from repro.core.units import Millis, Seconds\n"
            "def f(a_s: Seconds, b_ms: Millis) -> float:\n"
            "    # repro-lint: disable-next-line=RPL701\n"
            "    return a_s + b_ms\n"
        )
        findings = run_lint(
            [snippet], fixture_config(select=("RPL701",))
        )
        assert findings == [], render_text(findings)


# ----------------------------------------------------------------------
# Flow family (RPL8xx)
# ----------------------------------------------------------------------
class TestFlowRules:
    FLOW_IDS = ("RPL801", "RPL802", "RPL803", "RPL804", "RPL805")

    #: Lifecycle is src-scoped by default; the fixture corpus opts in
    #: with an everywhere-matching strict prefix and retargets the
    #: long-lived class list at the fixture's own classes.
    OVERRIDES = dict(
        select=FLOW_IDS,
        flow_strict_modules=("",),
        flow_longlived=("EventLog", "BoundedLog"),
    )

    def test_bad_fixture_triggers_all_five_rules(self):
        findings = lint_fixture("flow_bad.py", **self.OVERRIDES)
        assert sorted(set(rule_ids(findings))) == sorted(self.FLOW_IDS), (
            render_text(findings)
        )

    def test_good_fixture_is_clean(self):
        findings = lint_fixture("flow_good.py", **self.OVERRIDES)
        assert findings == [], render_text(findings)

    def test_rpl801_names_the_full_cycle(self):
        findings = lint_fixture(
            "flow_bad.py", **{**self.OVERRIDES, "select": ("RPL801",)}
        )
        assert len(findings) == 1
        assert "OrderA._lock" in findings[0].message
        assert "OrderB._lock" in findings[0].message

    def test_rpl802_direct_and_interprocedural(self):
        findings = lint_fixture(
            "flow_bad.py", **{**self.OVERRIDES, "select": ("RPL802",)}
        )
        messages = [f.message for f in findings]
        assert any(
            m.startswith("blocking call time.sleep") for m in messages
        )
        assert any("'Chatty._drain'" in m for m in messages)

    def test_rpl803_names_value_and_class(self):
        findings = lint_fixture(
            "flow_bad.py", **{**self.OVERRIDES, "select": ("RPL803",)}
        )
        assert any(
            "'state'" in f.message and "RequestState" in f.message
            for f in findings
        )

    def test_rpl804_distinguishes_leak_kinds(self):
        findings = lint_fixture(
            "flow_bad.py", **{**self.OVERRIDES, "select": ("RPL804",)}
        )
        messages = " | ".join(f.message for f in findings)
        assert "never released" in messages
        assert "exception paths" in messages
        assert "finally" in messages

    def test_rpl804_skipped_outside_strict_modules(self):
        findings = lint_fixture(
            "flow_bad.py",
            **{**self.OVERRIDES, "flow_strict_modules": ("src/repro/",)},
        )
        assert "RPL804" not in set(rule_ids(findings))

    def test_rpl805_names_container_and_entry(self):
        findings = lint_fixture(
            "flow_bad.py", **{**self.OVERRIDES, "select": ("RPL805",)}
        )
        containers = {f.message.split()[1] for f in findings}
        assert any(c.endswith(".EVENTS") for c in containers)
        assert "EventLog.entries" in containers
        assert all("reachable from loop entry" in f.message for f in findings)

    def test_rpl805_allowlist_silences_container(self):
        findings = lint_fixture(
            "flow_bad.py",
            **{
                **self.OVERRIDES,
                "select": ("RPL805",),
                "flow_bounded_containers": (
                    "lint_fixtures.flow_bad.EVENTS",
                    "EventLog.entries",
                ),
            },
        )
        assert findings == [], render_text(findings)

    def test_suppression_silences_flow_finding(self, tmp_path):
        snippet = tmp_path / "suppressed_flow.py"
        snippet.write_text(
            "import threading\n"
            "import time\n"
            "class Noisy:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def tick(self):\n"
            "        with self._lock:\n"
            "            # repro-lint: disable-next-line=RPL802\n"
            "            time.sleep(0.01)\n"
        )
        findings = run_lint([snippet], fixture_config(select=("RPL802",)))
        assert findings == [], render_text(findings)


# ----------------------------------------------------------------------
# Suppressions, config, reporters
# ----------------------------------------------------------------------
class TestSuppressionsAndConfig:
    def test_all_three_suppression_forms(self):
        assert lint_fixture("suppressed.py") == []

    def test_suppression_is_rule_specific(self, tmp_path):
        snippet = tmp_path / "wrong_id.py"
        snippet.write_text(
            "import numpy as np\n"
            "gen = np.random.default_rng()  # repro-lint: disable=RPL104\n"
        )
        findings = run_lint([snippet], fixture_config())
        assert rule_ids(findings) == ["RPL101"]

    def test_select_and_ignore(self):
        only = lint_fixture("determinism_bad.py", select=("RPL103",))
        assert rule_ids(only) == ["RPL103"]
        without = lint_fixture("determinism_bad.py", ignore=("RPL103",))
        assert "RPL103" not in rule_ids(without)

    def test_pyproject_table_overrides(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nhot-path = ["custom/"]\nignore = ["RPL103"]\n'
        )
        config = load_config(tmp_path / "module.py")
        assert config.hot_path == ("custom/",)
        assert config.ignore == ("RPL103",)

    def test_flow_table_overrides(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint.flow]\nlonglived = ["EventLog"]\n'
        )
        config = load_config(tmp_path / "module.py")
        assert config.flow_longlived == ("EventLog",)

    def test_unknown_flow_key_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint.flow]\nlong-lived = ["EventLog"]\n'
        )
        with pytest.raises(ValueError, match="long-lived"):
            load_config(tmp_path / "module.py")

    def test_unknown_config_key_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\nhot-paths = []\n"
        )
        with pytest.raises(ValueError, match="hot-paths"):
            load_config(tmp_path / "module.py")


class TestReporters:
    def _findings(self):
        return lint_fixture("determinism_bad.py")

    def test_text_reporter(self):
        text = render_text(self._findings())
        assert "RPL101" in text and "RPL104" in text
        assert "hint:" in text
        assert render_text([]) == "repro-lint: clean (0 findings)"

    def test_json_reporter_schema(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["schema_version"] == 1
        assert payload["tool"] == "repro-lint"
        assert payload["finding_count"] == len(self._findings())
        assert payload["counts_by_rule"]["RPL103"] == 1
        first = payload["findings"][0]
        assert set(first) >= {"rule_id", "path", "line", "col", "message"}

    def test_findings_sorted_and_immutable(self):
        findings = self._findings()
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
        with pytest.raises(AttributeError):
            findings[0].rule_id = "RPL999"


# ----------------------------------------------------------------------
# Rule registry and the repo meta-check
# ----------------------------------------------------------------------
class TestRegistryAndRepoTree:
    EXPECTED_RULES = {
        "RPL101", "RPL102", "RPL103", "RPL104",
        "RPL201", "RPL202", "RPL203",
        "RPL301", "RPL302", "RPL303", "RPL304",
        "RPL401", "RPL402",
        "RPL501", "RPL502",
        "RPL601", "RPL602", "RPL603",
        "RPL701", "RPL702", "RPL703", "RPL704", "RPL705",
        "RPL801", "RPL802", "RPL803", "RPL804", "RPL805",
        "RPL901", "RPL902", "RPL903", "RPL904", "RPL905",
        "RPL1001", "RPL1002", "RPL1003", "RPL1004", "RPL1005",
    }

    def test_registry_is_complete(self):
        registry = all_rules()
        assert set(registry) == self.EXPECTED_RULES
        for rule_id, rule_cls in registry.items():
            assert rule_cls.rule_id == rule_id
            assert rule_cls.description
            assert rule_cls.autofix_hint
            assert rule_cls.family

    def test_package_tree_lints_clean(self):
        """The acceptance gate: repro-lint on src/repro finds nothing."""
        findings = run_lint([PACKAGE], LintConfig())
        assert findings == [], render_text(findings)

    def test_whole_repo_lints_clean(self):
        """tests/ and examples/ are held to the same bar (minus the
        deliberately-broken fixture corpus)."""
        findings = run_lint(
            [PACKAGE, REPO_ROOT / "tests", REPO_ROOT / "examples"],
            LintConfig(),
            exclude=[FIXTURES],
        )
        assert findings == [], render_text(findings)

    def test_exclude_drops_subtree(self):
        with_fixtures = run_lint(
            [REPO_ROOT / "tests"], LintConfig(select=("RPL101",))
        )
        without = run_lint(
            [REPO_ROOT / "tests"],
            LintConfig(select=("RPL101",)),
            exclude=[FIXTURES],
        )
        assert any(f.path.startswith(str(FIXTURES)) for f in with_fixtures)
        assert not any(f.path.startswith(str(FIXTURES)) for f in without)


# ----------------------------------------------------------------------
# Console entry point
# ----------------------------------------------------------------------
def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCLI:
    def test_clean_tree_exits_zero(self):
        result = run_cli(str(PACKAGE))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_findings_exit_one(self):
        result = run_cli(
            str(FIXTURES / "determinism_bad.py"), "--select", "RPL101"
        )
        assert result.returncode == 1
        assert "RPL101" in result.stdout

    def test_json_format(self):
        result = run_cli(
            str(FIXTURES / "determinism_bad.py"),
            "--select", "RPL101",
            "--format", "json",
        )
        assert result.returncode == 1
        assert json.loads(result.stdout)["finding_count"] == 1

    def test_unknown_rule_exits_two(self):
        result = run_cli(str(PACKAGE), "--select", "RPL999")
        assert result.returncode == 2

    def test_missing_path_exits_two(self):
        result = run_cli(str(REPO_ROOT / "no_such_file.txt"))
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in TestRegistryAndRepoTree.EXPECTED_RULES:
            assert rule_id in result.stdout

    def test_select_units_family_text(self):
        """``--select UNITS`` expands to RPL701-705 and reports findings."""
        result = run_cli(
            str(FIXTURES / "units_bad.py"), "--select", "UNITS"
        )
        assert result.returncode == 1, result.stdout + result.stderr
        assert "RPL701" in result.stdout
        assert "RPL704" in result.stdout

    def test_select_units_family_json(self):
        result = run_cli(
            str(FIXTURES / "units_bad.py"),
            "--select", "UNITS",
            "--format", "json",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        counts = payload["counts_by_rule"]
        assert counts.get("RPL701") == 1
        assert counts.get("RPL704") == 1
        assert counts.get("RPL703") == 1  # the Eq. 5 floor literal
        assert payload["finding_count"] >= 3

    def test_select_units_family_clean_on_package(self):
        """The dogfooding gate: ``--select UNITS`` is clean on src/repro."""
        result = run_cli(str(PACKAGE), "--select", "UNITS")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout
