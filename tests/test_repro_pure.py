"""repro-pure: PURE-family (RPL9xx) rule behavior on the effect
fixtures, interprocedural effect closures, the CLI report, cache
coverage of the nested pure table, and the meta-tests pinning the
repo's own probe/commit split."""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint
from repro.analysis.cache import LintCache, cache_key, config_digest
from repro.analysis.config import load_config
from repro.analysis.engine import LintEngine
from repro.analysis.pure import pure_analysis
from repro.analysis.pure_cli import main as pure_main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = REPO_ROOT / "src" / "repro"

PURE_IDS = ("RPL901", "RPL902", "RPL903", "RPL904", "RPL905")
BAD = "lint_fixtures.effect_bad"
GOOD = "lint_fixtures.effect_good"


def bad_config(**overrides) -> LintConfig:
    base = dict(
        select=PURE_IDS,
        pure_registry=(
            f"{BAD}.Prober.scan",
            f"{BAD}.bump_totals",
            f"{BAD}.tally",
        ),
        pure_probe_entrypoints=(f"{BAD}.Prober.scan",),
        pure_commit_mutators=(f"{BAD}.Committer.commit",),
        pure_snapshot_methods=("placements", "status", "timeline"),
        pure_allow_calls=(),
    )
    base.update(overrides)
    return LintConfig(**base)


def good_config(**overrides) -> LintConfig:
    base = dict(
        select=PURE_IDS,
        pure_registry=(
            f"{GOOD}.Prober.scan",
            f"{GOOD}.read_totals",
            f"{GOOD}.tally",
        ),
        pure_probe_entrypoints=(f"{GOOD}.Prober.scan",),
        pure_commit_mutators=(f"{GOOD}.Committer.commit",),
        pure_snapshot_methods=("placements", "status", "timeline"),
        pure_allow_calls=(),
    )
    base.update(overrides)
    return LintConfig(**base)


def lint_fixture(filename: str, config: LintConfig):
    return run_lint([FIXTURES / filename], config)


def analyse_fixture(filename: str, config: LintConfig):
    engine = LintEngine(config)
    project = engine.build_project([FIXTURES / filename])
    return pure_analysis(project, config)


def analyse_source(tmp_path, source: str, config: LintConfig):
    path = tmp_path / "mod.py"
    path.write_text(source)
    engine = LintEngine(config)
    project = engine.build_project([path])
    return pure_analysis(project, config)


def rule_ids(findings) -> list:
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# The fixture corpus: every rule fires on bad, stays silent on good
# ----------------------------------------------------------------------
class TestEffectFixtures:
    def test_bad_fixture_triggers_first_four_rules(self):
        findings = lint_fixture("effect_bad.py", bad_config())
        assert sorted(set(rule_ids(findings))) == [
            "RPL901",
            "RPL902",
            "RPL903",
            "RPL904",
        ]

    def test_good_fixture_is_clean(self):
        assert lint_fixture("effect_good.py", good_config()) == []

    def test_rpl901_covers_every_mutation_kind(self):
        analysis = analyse_fixture("effect_bad.py", bad_config())
        ops = {hit.effect.op for hit in analysis.mutations}
        assert {"augmented-assign", "subscript-write", "mutating-call"} <= ops
        roots = {hit.effect.root for hit in analysis.mutations}
        assert "self" in roots
        assert "param:items" in roots
        assert "global:TOTALS" in roots

    def test_rpl901_marker_declares_purity_without_config(self):
        """@declared_pure alone registers the root (no registry entry)."""
        findings = lint_fixture(
            "effect_bad.py",
            bad_config(pure_registry=(), pure_probe_entrypoints=()),
        )
        marked = [
            f
            for f in findings
            if f.rule_id == "RPL901" and "marked_mutator" in f.message
        ]
        assert marked, [f.message for f in findings]

    def test_rpl902_all_three_violation_kinds(self):
        analysis = analyse_fixture("effect_bad.py", bad_config())
        kinds = {hit.kind for hit in analysis.phase}
        assert kinds == {"commit-mutator", "fresh-rng", "clock"}
        commit = [h for h in analysis.phase if h.kind == "commit-mutator"]
        assert commit[0].what == "Committer.commit"
        assert commit[0].path[0].endswith("Prober.scan")

    def test_rpl903_direct_and_aliased_escape(self):
        analysis = analyse_fixture("effect_bad.py", bad_config())
        containers = {hit.container for hit in analysis.snapshots}
        assert containers == {"Board._jobs", "Board._log"}
        methods = {hit.method for hit in analysis.snapshots}
        assert methods == {"Board.status", "Board.timeline"}

    def test_rpl904_list_call_and_for_loop(self):
        analysis = analyse_fixture("effect_bad.py", bad_config())
        consumers = {hit.consumer for hit in analysis.order}
        assert consumers == {"list()", "for-loop"}
        assert all(h.entry.endswith("Prober.scan") for h in analysis.order)

    def test_interprocedural_mutation_two_calls_deep(self):
        """tally -> relay -> deep_mutate: the parameter mutation is
        charged to the registered-pure root through argument binding."""
        analysis = analyse_fixture("effect_bad.py", bad_config())
        deep = [
            hit
            for hit in analysis.mutations
            if hit.root_key.endswith(":tally")
        ]
        assert len(deep) == 1
        effect = deep[0].effect
        assert effect.root == "param:items"
        assert effect.chain == ("relay", "deep_mutate")
        # The sibling call relay(log) mutates a fresh local: not charged.
        assert all(
            h.effect.root != "param:log" for h in analysis.mutations
        )

    def test_rpl905_stale_entry_fires_only_for_present_modules(self):
        stale = bad_config(
            pure_registry=(f"{BAD}.Prober.scan", f"{BAD}.vanished"),
        )
        findings = [
            f
            for f in lint_fixture("effect_bad.py", stale)
            if f.rule_id == "RPL905"
        ]
        assert len(findings) == 1
        assert "vanished" in findings[0].message
        # The same stale entry is silent when its module is not analysed.
        assert (
            lint_fixture(
                "effect_good.py",
                good_config(
                    pure_registry=(
                        f"{GOOD}.Prober.scan",
                        f"{BAD}.vanished",
                    ),
                ),
            )
            == []
        )

    def test_rpl905_probe_and_mutator_contradiction(self):
        config = bad_config(
            pure_probe_entrypoints=(
                f"{BAD}.Committer.commit",
                f"{BAD}.Prober.scan",
            ),
        )
        findings = [
            f
            for f in lint_fixture("effect_bad.py", config)
            if f.rule_id == "RPL905"
        ]
        assert len(findings) == 1
        assert "both a probe entry point and a commit mutator" in (
            findings[0].message
        )


# ----------------------------------------------------------------------
# Precision: the shapes the analysis must NOT flag
# ----------------------------------------------------------------------
MARKER = "def declared_pure(fn):\n    return fn\n"


class TestPrecision:
    def _mutations(self, tmp_path, source):
        analysis = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS)
        )
        return analysis.mutations

    def test_external_module_functions_are_not_mutations(self, tmp_path):
        """np.append returns a fresh array; module-rooted receivers of
        imported externals must not read as mutating-method calls."""
        source = MARKER + (
            "import numpy as np\n"
            "@declared_pure\n"
            "def widen(xs):\n"
            "    return np.append(xs, 1.0)\n"
        )
        assert self._mutations(tmp_path, source) == []

    def test_constructed_object_mutation_is_fresh(self, tmp_path):
        """Calling a constructor whose __init__ writes self, then
        mutating the result, touches no pre-existing state."""
        source = MARKER + (
            "class Bag:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "@declared_pure\n"
            "def build(xs):\n"
            "    bag = Bag()\n"
            "    bag.items.append(xs)\n"
            "    return bag\n"
        )
        assert self._mutations(tmp_path, source) == []

    def test_del_of_local_name_is_unbinding_not_mutation(self, tmp_path):
        source = MARKER + (
            "@declared_pure\n"
            "def pick(xs):\n"
            "    best = xs[0]\n"
            "    del best\n"
            "    return xs[0]\n"
        )
        assert self._mutations(tmp_path, source) == []

    def test_del_of_attribute_is_a_mutation(self, tmp_path):
        source = MARKER + (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._entries = {}\n"
            "    @declared_pure\n"
            "    def evict(self, key):\n"
            "        del self._entries[key]\n"
        )
        (hit,) = self._mutations(tmp_path, source)
        assert hit.effect.op == "del"
        assert hit.effect.root == "self"

    def test_global_statement_assignment_is_a_mutation(self, tmp_path):
        source = MARKER + (
            "COUNT = 0\n"
            "@declared_pure\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
            "    return COUNT\n"
        )
        (hit,) = self._mutations(tmp_path, source)
        assert hit.effect.root == "global:COUNT"

    def test_param_rebound_to_fresh_value_demotes_the_alias(self, tmp_path):
        """x = list(x) launders the alias: later mutation is local."""
        source = MARKER + (
            "@declared_pure\n"
            "def dedupe(xs):\n"
            "    xs = list(xs)\n"
            "    xs.sort()\n"
            "    return xs\n"
        )
        assert self._mutations(tmp_path, source) == []

    def test_dict_spread_copies_but_keyed_value_aliases(self, tmp_path):
        source = (
            "from typing import Dict\n"
            "class Svc:\n"
            "    def __init__(self):\n"
            "        self._counts: Dict[str, int] = {}\n"
            "        self._jobs: Dict[str, int] = {}\n"
            "    def status(self):\n"
            "        return {**self._counts, 'jobs': self._jobs}\n"
        )
        analysis = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS)
        )
        containers = {hit.container for hit in analysis.snapshots}
        assert containers == {"Svc._jobs"}

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        source = MARKER + (
            "@declared_pure\n"
            "def order(names):\n"
            "    pending = set(names)\n"
            "    return [n for n in sorted(pending)]\n"
        )
        analysis = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS)
        )
        assert analysis.order == []

    def test_set_comprehension_into_listcomp_is_flagged(self, tmp_path):
        source = MARKER + (
            "@declared_pure\n"
            "def order(names):\n"
            "    pending = {n for n in names}\n"
            "    return [n for n in pending]\n"
        )
        analysis = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS)
        )
        assert [h.consumer for h in analysis.order] == [
            "list-comprehension"
        ]

    def test_suppression_silences_pure_findings(self, tmp_path):
        source = MARKER + (
            "@declared_pure\n"
            "def noisy(acc):\n"
            "    # repro-lint: disable-next-line=RPL901\n"
            "    acc.append(1)\n"
        )
        analysis = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS)
        )
        assert analysis.mutations == []

    def test_allow_calls_exempts_the_telemetry_surface(self, tmp_path):
        source = MARKER + (
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._metrics = {}\n"
            "    def counter(self, name):\n"
            "        return self._metrics.setdefault(name, 0)\n"
            "class Probe:\n"
            "    def __init__(self):\n"
            "        self.metrics = Registry()\n"
            "    @declared_pure\n"
            "    def check(self, node):\n"
            "        self.metrics.counter('probe.checks')\n"
            "        return True\n"
        )
        flagged = analyse_source(
            tmp_path, source, LintConfig(select=PURE_IDS, pure_allow_calls=())
        )
        assert any(
            h.effect.chain == ("Registry.counter",)
            for h in flagged.mutations
        )
        allowed = analyse_source(
            tmp_path,
            source,
            LintConfig(
                select=PURE_IDS, pure_allow_calls=("Registry.counter",)
            ),
        )
        assert allowed.mutations == []


# ----------------------------------------------------------------------
# repro-pure CLI
# ----------------------------------------------------------------------
def run_pure_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.pure_cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
    )


class TestPureCLI:
    def test_text_report_on_package_is_clean(self):
        result = run_pure_cli(str(PACKAGE), "--check")
        assert result.returncode == 0, result.stderr
        assert "declared-pure registry" in result.stdout
        assert "probe_admit" in result.stdout
        assert "violations: none" in result.stdout
        assert "every registry entry resolves" in result.stdout

    def test_json_report_schema(self):
        result = run_pure_cli(
            str(FIXTURES / "effect_bad.py"), "--format", "json"
        )
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert set(payload) >= {
            "pure_roots",
            "mutations",
            "probe_entries",
            "phase_violations",
            "snapshot_escapes",
            "order_hazards",
            "stale_registry",
            "violations",
        }
        # Default config: the @declared_pure marker and the snapshot
        # accessors still yield findings without any fixture config.
        assert payload["violations"] >= 1

    def test_check_fails_on_bad_fixture(self):
        result = run_pure_cli(str(FIXTURES / "effect_bad.py"), "--check")
        assert result.returncode == 1
        assert "violation(s) found" in result.stderr

    def test_missing_path_is_usage_error(self, tmp_path):
        result = run_pure_cli(cwd=tmp_path)
        assert result.returncode == 2


# ----------------------------------------------------------------------
# Config + cache: the nested pure table
# ----------------------------------------------------------------------
PURE_TABLE = (
    "[tool.repro-lint.pure]\n"
    'registry = ["pkg.mod.fn"]\n'
    'probe-entrypoints = ["pkg.mod.fn"]\n'
)


class TestPureConfigAndCache:
    def test_nested_table_parses_into_pure_fields(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(PURE_TABLE)
        config = load_config(tmp_path)
        assert config.pure_registry == ("pkg.mod.fn",)
        assert config.pure_probe_entrypoints == ("pkg.mod.fn",)
        # Untouched pure fields keep their defaults.
        assert "repro.cluster.state.Cluster.place" in (
            config.pure_commit_mutators
        )

    def test_unknown_pure_subkey_is_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint.pure]\nregistryy = ['x']\n"
        )
        with pytest.raises(ValueError, match="repro-lint.pure"):
            load_config(tmp_path)

    def test_non_list_pure_value_is_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint.pure]\nregistry = 'x'\n"
        )
        with pytest.raises(ValueError):
            load_config(tmp_path)

    def test_nested_table_edit_changes_config_digest(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(PURE_TABLE)
        before = config_digest(load_config(tmp_path))
        pyproject.write_text(
            PURE_TABLE.replace("pkg.mod.fn", "pkg.mod.other")
        )
        after = config_digest(load_config(tmp_path))
        assert before != after

    def test_nested_table_edit_invalidates_cached_run(self, tmp_path):
        """End-to-end: a cached clean verdict must not survive an edit
        to [tool.repro-lint.pure]."""
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(PURE_TABLE)
        target = tmp_path / "mod.py"
        target.write_text("def fn():\n    return 1\n")
        cache = LintCache(tmp_path / "cache.json")
        key = cache_key([target], load_config(tmp_path))
        cache.store(key, [])
        assert cache.lookup(key) == []
        pyproject.write_text(
            PURE_TABLE.replace("pkg.mod.fn", "pkg.mod.other")
        )
        new_key = cache_key([target], load_config(tmp_path))
        assert cache.lookup(new_key) is None


# ----------------------------------------------------------------------
# Meta: the repo's own probe/commit split, pinned
# ----------------------------------------------------------------------
class TestRepoPurity:
    """Mirrors repro-lint-src-is-clean for the PURE family, plus the
    two acceptance mutations that must break the gate."""

    def test_package_tree_is_pure_clean(self):
        findings = run_lint(
            [PACKAGE], LintConfig(select=PURE_IDS)
        )
        assert findings == [], [f.message for f in findings]

    def _mutated_package(self, tmp_path, filename, old, new):
        tree = tmp_path / "repro"
        shutil.copytree(PACKAGE, tree)
        target = tree / filename
        source = target.read_text()
        assert old in source, f"mutation anchor missing in {filename}"
        target.write_text(source.replace(old, new, 1))
        return tree

    def test_set_shaped_probe_walk_fails_the_check(self, tmp_path, capsys):
        """Acceptance: routing the probe walk through a set (hash-order
        probing) must flip repro-pure to exit 1."""
        tree = self._mutated_package(
            tmp_path,
            "warehouse/service.py",
            "for index in self._by_density[density]:",
            "for index in set(self._by_density[density]):",
        )
        code = pure_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "_by_density" in out.out
        assert "probe_admit" in out.out

    def test_probe_attribute_write_fails_the_check(self, tmp_path, capsys):
        """Acceptance: one attribute write inside QuickProbe.check must
        flip repro-pure to exit 1."""
        tree = self._mutated_package(
            tmp_path,
            "warehouse/admission.py",
            "tried = set()",
            "tried = set()\n        self._last_node = node_state.index",
        )
        code = pure_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "QuickProbe.check" in out.out
        assert "_last_node" in out.out

    def test_unsanctioned_store_write_fails_the_check(self, tmp_path, capsys):
        """Removing the reasoned suppression re-exposes the RPL902 hit
        at the obstore publish site — the suppression is load-bearing."""
        tree = self._mutated_package(
            tmp_path,
            "server/node.py",
            "        # repro-lint: disable-next-line=RPL902\n",
            "",
        )
        code = pure_main([str(tree), "--check"])
        out = capsys.readouterr()
        assert code == 1
        assert "ObservationStore.put" in out.out
