"""The vectorized batch APIs must agree with their scalar counterparts.

``random_batch`` / ``to_unit_cube_batch`` / ``from_unit_cube_batch`` /
``neighbor_matrices`` exist purely for speed; every slice of a batch
result must be a configuration the scalar API could have produced, and
the batch sampler must draw from the same distribution as ``random``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import (
    Configuration,
    ConfigurationSpace,
    Resource,
    ServerSpec,
)
from repro.resources.allocation import _round_column, _round_columns_batch


@st.composite
def spaces(draw):
    n_res = draw(st.integers(1, 3))
    n_jobs = draw(st.integers(1, 4))
    units = [draw(st.integers(n_jobs, n_jobs + 8)) for _ in range(n_res)]
    server = ServerSpec(
        resources=tuple(Resource(f"r{i}", u) for i, u in enumerate(units))
    )
    return ConfigurationSpace(server, n_jobs)


class TestRandomBatch:
    @given(space=spaces(), n=st.integers(0, 30), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_every_draw_is_a_valid_partition(self, space, n, seed):
        batch = space.random_batch(n, np.random.default_rng(seed))
        assert batch.shape == (n, space.n_jobs, space.n_resources)
        for matrix in batch:
            space.validate(Configuration.from_matrix(matrix))

    def test_distribution_matches_scalar_random(self):
        """Same stars-and-bars law as ``random``: compare per-cell mean
        allocations over many draws (documented equivalence — the two
        consume the generator stream differently, so draws are not
        bitwise equal)."""
        server = ServerSpec(
            resources=(Resource("cores", 10), Resource("ways", 7))
        )
        space = ConfigurationSpace(server, 3)
        n = 4000
        batch = space.random_batch(n, np.random.default_rng(0))
        scalar = np.array(
            [
                space.random(np.random.default_rng(1000 + i)).as_array()
                for i in range(n)
            ]
        )
        # Uniform compositions give each job units/n_jobs on average.
        expected = np.array([[10 / 3, 7 / 3]] * 3)
        np.testing.assert_allclose(batch.mean(axis=0), expected, atol=0.1)
        np.testing.assert_allclose(scalar.mean(axis=0), expected, atol=0.1)
        np.testing.assert_allclose(
            batch.mean(axis=0), scalar.mean(axis=0), atol=0.15
        )
        # Second moment too: spreads must match, not just centers.
        np.testing.assert_allclose(
            batch.std(axis=0), scalar.std(axis=0), atol=0.15
        )

    def test_single_job_gets_everything(self):
        server = ServerSpec(resources=(Resource("cores", 5),))
        space = ConfigurationSpace(server, 1)
        batch = space.random_batch(4, np.random.default_rng(0))
        assert (batch == 5).all()


class TestCubeBatch:
    @given(space=spaces(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_to_unit_cube_batch_matches_scalar(self, space, seed):
        batch = space.random_batch(8, np.random.default_rng(seed))
        cube = space.to_unit_cube_batch(batch)
        for i, matrix in enumerate(batch):
            expected = space.to_unit_cube(Configuration.from_matrix(matrix))
            np.testing.assert_array_equal(cube[i], expected)

    @given(space=spaces(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_from_unit_cube_batch_matches_scalar(self, space, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((10, space.n_dims))
        mats = space.from_unit_cube_batch(x)
        for i in range(len(x)):
            assert (
                Configuration.from_matrix(mats[i]) == space.from_unit_cube(x[i])
            )

    def test_round_trip(self):
        server = ServerSpec(
            resources=(Resource("cores", 9), Resource("ways", 6))
        )
        space = ConfigurationSpace(server, 3)
        batch = space.random_batch(20, np.random.default_rng(2))
        round_trip = space.from_unit_cube_batch(space.to_unit_cube_batch(batch))
        np.testing.assert_array_equal(round_trip, batch)


class TestNeighborMatrices:
    @given(space=spaces(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_neighbors_order_and_content(self, space, seed):
        config = space.random(np.random.default_rng(seed))
        mats = space.neighbor_matrices(config)
        expected = list(space.neighbors(config))
        assert len(mats) == len(expected)
        for matrix, neighbor in zip(mats, expected):
            assert Configuration.from_matrix(matrix) == neighbor


class TestRoundColumnsBatch:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_jobs=st.integers(1, 5),
        spare=st.integers(0, 9),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_round_column(self, seed, n_jobs, spare):
        rng = np.random.default_rng(seed)
        total = n_jobs + spare
        weights = rng.random((12, n_jobs))
        weights[0] = 0.0  # degenerate all-zero row falls back to equal split
        batch = _round_columns_batch(weights, total)
        for i in range(len(weights)):
            np.testing.assert_array_equal(
                batch[i], _round_column(weights[i], total)
            )
        assert (batch >= 1).all()
        assert (batch.sum(axis=1) == total).all()
