"""Unit tests for the policy interface and search recorder."""

import pytest

from repro.schedulers import PolicyResult, SearchRecorder
from repro.server import NodeBudget

from conftest import make_node


class TestSearchRecorder:
    def test_observe_records_and_scores(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(5))
        entry = recorder.observe(quiet_node.space.equal_partition())
        assert entry.index == 0
        assert 0 <= entry.score <= 1
        assert recorder.best is entry

    def test_best_tracks_maximum(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(5))
        a = recorder.observe(quiet_node.space.max_allocation(2))
        b = recorder.observe(quiet_node.space.equal_partition())
        assert recorder.best.score == max(a.score, b.score)

    def test_budget_enforced(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(2))
        recorder.observe(quiet_node.space.equal_partition())
        recorder.observe(quiet_node.space.max_allocation(0))
        assert recorder.exhausted
        with pytest.raises(RuntimeError, match="budget exhausted"):
            recorder.observe(quiet_node.space.max_allocation(1))

    def test_result_packaging(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(3))
        recorder.observe(quiet_node.space.equal_partition())
        result = recorder.result("TEST", converged=True)
        assert result.policy == "TEST"
        assert result.best_config == quiet_node.space.equal_partition()
        assert result.converged
        assert result.samples_taken == 1

    def test_empty_result(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(3))
        result = recorder.result("TEST", converged=False)
        assert result.best_config is None
        assert result.best_score == 0.0
        assert not result.qos_met


class TestPolicyResult:
    def test_total_evaluations(self, quiet_node):
        recorder = SearchRecorder(quiet_node, NodeBudget(3))
        recorder.observe(quiet_node.space.equal_partition())
        online = recorder.result("A", converged=True)
        assert online.total_evaluations == 1
        offline = PolicyResult(
            policy="B",
            best_config=None,
            best_observation=None,
            best_score=0.0,
            qos_met=False,
            converged=True,
            trace=(),
            evaluations=5000,
        )
        assert offline.total_evaluations == 5000
        assert offline.samples_taken == 0
