"""Unit tests for mix specs and the trial runner."""

import pytest

from repro.experiments import MixSpec, isolated_lc_latencies, run_policies, run_trial
from repro.schedulers import OraclePolicy, PartiesPolicy
from repro.server import NodeBudget
from repro.workloads import LoadSchedule


class TestMixSpec:
    def test_of_builder(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.5)], bg=["streamcluster"])
        assert mix.n_jobs == 2
        assert mix.lc == (("img-dnn", 0.5),)
        assert mix.bg == ("streamcluster",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one job"):
            MixSpec(lc=(), bg=())

    def test_label(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.5)], bg=["canneal"])
        assert mix.label() == "img-dnn@50% + canneal"

    def test_label_dynamic(self):
        schedule = LoadSchedule.constant(0.5)
        mix = MixSpec.of(lc=[("img-dnn", schedule)])
        assert "dyn" in mix.label()

    def test_with_lc_load(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.5), ("xapian", 0.3)])
        updated = mix.with_lc_load("xapian", 0.9)
        assert updated.lc == (("img-dnn", 0.5), ("xapian", 0.9))
        assert mix.lc[1][1] == 0.3  # original untouched

    def test_with_lc_load_unknown_job(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.5)])
        with pytest.raises(KeyError):
            mix.with_lc_load("memcached", 0.5)

    def test_build_node(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.5)], bg=["streamcluster"])
        node = mix.build_node(seed=0)
        assert node.job_names() == ("img-dnn", "streamcluster")
        assert node.jobs[0].is_lc
        assert not node.jobs[1].is_lc

    def test_build_node_with_schedule(self):
        schedule = LoadSchedule.steps([(0, 0.1), (10, 0.5)])
        mix = MixSpec.of(lc=[("memcached", schedule)])
        node = mix.build_node(seed=0)
        assert node.jobs[0].load.load_at(20) == 0.5

    def test_build_node_noise_override(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)])
        node = mix.build_node(seed=0, noise=0.0)
        assert node.counters.relative_std == 0.0


class TestRunTrial:
    @pytest.fixture
    def mix(self):
        return MixSpec.of(
            lc=[("img-dnn", 0.3), ("memcached", 0.3)], bg=["blackscholes"]
        )

    def test_trial_metrics(self, mix):
        trial = run_trial(mix, PartiesPolicy(), seed=0, budget=NodeBudget(40))
        assert trial.policy == "PARTIES"
        assert set(trial.lc_performance) == {"img-dnn", "memcached"}
        assert set(trial.bg_performance) == {"blackscholes"}
        assert trial.samples <= 40
        assert 0 < trial.mean_bg_performance <= 1.0

    def test_qos_from_true_performance(self, mix):
        trial = run_trial(mix, PartiesPolicy(), seed=0, budget=NodeBudget(40))
        node = mix.build_node(seed=0)
        truth = node.true_performance(trial.result.best_config)
        assert trial.qos_met == truth.all_qos_met

    def test_isolated_latencies(self, mix):
        node = mix.build_node(seed=0)
        baselines = isolated_lc_latencies(node)
        assert set(baselines) == {"img-dnn", "memcached"}
        assert all(v > 0 for v in baselines.values())

    def test_run_policies_shapes(self, mix):
        results = run_policies(
            mix,
            {"PARTIES": lambda seed: PartiesPolicy()},
            seeds=(0, 1),
            budget=NodeBudget(30),
        )
        assert set(results) == {"PARTIES"}
        assert len(results["PARTIES"]) == 2

    def test_oracle_trial(self, mix):
        trial = run_trial(
            mix, OraclePolicy(max_enumeration=3000), budget=NodeBudget(10)
        )
        assert trial.qos_met
        assert trial.samples == 0
        assert trial.evaluations > 1000

    def test_lc_only_mix_mean_bg_raises(self):
        mix = MixSpec.of(lc=[("img-dnn", 0.2)])
        trial = run_trial(mix, PartiesPolicy(), seed=0, budget=NodeBudget(20))
        with pytest.raises(ValueError):
            trial.mean_bg_performance
        assert trial.mean_lc_performance > 0
