"""repro-san: shadow instrumentation, race detection, hash-order probe,
and the real verify_nodes pool under the sanitizer."""

from __future__ import annotations

import threading

import pytest

from repro.cluster.scheduler import verify_nodes
from repro.cluster.state import ClusterNode, JobRequest
from repro.core import CLITEConfig
from repro.sanitizer import (
    ProbeError,
    Sanitizer,
    active_sanitizer,
    hash_order_probe,
    instrument,
    register_shared,
)
from repro.sanitizer.cli import main as san_main
from repro.telemetry import Telemetry

from conftest import make_bg, make_lc
from lint_fixtures.sanitizer_racy import RacyAccumulator

FAST_ENGINE = CLITEConfig(
    max_iterations=8,
    post_qos_iterations=2,
    refine_budget=4,
    confirm_top=1,
    n_restarts=2,
)


def run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


# ----------------------------------------------------------------------
# Shadow instrumentation on the racy toy class
# ----------------------------------------------------------------------
@pytest.mark.sanitize
class TestRaceDetection:
    def test_write_write_race_detected(self):
        racy = RacyAccumulator()
        with instrument(racy, names=("Racy",)) as san:
            run_threads(racy.bump_unguarded, racy.bump_unguarded)
            races = san.races()
        fields = {r.fld for r in races}
        assert "unguarded" in fields
        write_write = [
            r
            for r in races
            if r.fld == "unguarded"
            and r.first.kind == "write"
            and r.second.kind == "write"
        ]
        assert write_write, "write/write pair missing"
        assert write_write[0].first.lockset == frozenset()

    def test_write_read_race_detected(self):
        racy = RacyAccumulator()
        with instrument(racy, names=("Racy",)) as san:
            run_threads(racy.bump_unguarded, racy.peek_unguarded)
            races = san.races()
        kinds = {
            frozenset((r.first.kind, r.second.kind))
            for r in races
            if r.fld == "unguarded"
        }
        assert frozenset(("write", "read")) in kinds

    def test_lock_guarded_field_is_clean(self):
        racy = RacyAccumulator()
        with instrument(racy, names=("Racy",)) as san:
            run_threads(racy.bump_guarded, racy.bump_guarded)
            races = san.races()
        assert all(r.fld != "guarded" for r in races)

    def test_read_only_sharing_is_clean(self):
        racy = RacyAccumulator()
        with instrument(racy, names=("Racy",)) as san:
            run_threads(racy.read_shared, racy.read_shared)
            races = san.races()
        assert all(r.fld != "read_only" for r in races)

    def test_single_thread_never_races(self):
        racy = RacyAccumulator()
        with instrument(racy, names=("Racy",)) as san:
            racy.bump_unguarded()
            racy.peek_unguarded()
            assert san.races() == []

    def test_instrumented_values_are_exact(self):
        """Instrumentation observes; it must never perturb the data."""
        racy = RacyAccumulator()
        with instrument(racy) as san:
            racy.bump_guarded(50)
            assert san.accesses()  # something was recorded
        assert racy.guarded == 50
        assert racy.read_shared() == 7

    def test_restore_removes_shadow_class(self):
        racy = RacyAccumulator()
        original_cls = type(racy)
        with instrument(racy):
            assert type(racy).__name__.startswith("_Sanitized")
        assert type(racy) is original_cls
        # The instrumented lock wrapper is gone too.
        assert type(racy.__dict__["_lock"]) is type(threading.Lock())

    def test_double_watch_is_idempotent(self):
        racy = RacyAccumulator()
        san = Sanitizer()
        try:
            san.watch(racy, name="Racy")
            san.watch(racy, name="Racy")
            assert type(racy).__name__ == "_SanitizedRacyAccumulator"
        finally:
            san.restore()
        assert type(racy) is RacyAccumulator


class TestHooks:
    def test_register_shared_is_noop_without_sanitizer(self):
        assert active_sanitizer() is None
        racy = RacyAccumulator()
        assert register_shared(racy) is racy
        assert type(racy) is RacyAccumulator

    def test_register_shared_watches_when_active(self):
        racy = RacyAccumulator()
        with instrument() as san:
            assert active_sanitizer() is san
            register_shared(racy, name="Racy")
            assert type(racy).__name__.startswith("_Sanitized")
        assert active_sanitizer() is None
        assert type(racy) is RacyAccumulator

    def test_nested_activation_rejected(self):
        with instrument():
            with pytest.raises(RuntimeError, match="already active"):
                with instrument():
                    pass  # pragma: no cover

    def test_metric_registry_self_registers(self):
        from repro.telemetry.metrics import MetricRegistry

        with instrument():
            registry = MetricRegistry()
            assert type(registry).__name__.startswith("_Sanitized")
            registry.counter("hook_check_total").add(1)
        assert type(registry) is MetricRegistry


# ----------------------------------------------------------------------
# The real verify_nodes pool under the sanitizer
# ----------------------------------------------------------------------
def _states(spec, n=3):
    states = []
    for i in range(n):
        states.append(
            ClusterNode(i, spec)
            .with_request(JobRequest(make_lc(f"svc-{i}"), 0.3, name=f"svc-{i}"))
            .with_request(JobRequest(make_bg(f"batch-{i}"), name=f"batch-{i}"))
        )
    return states


@pytest.mark.sanitize
class TestRealPoolStress:
    def test_verify_workers_pool_is_race_free(self, mini_server):
        """The acceptance gate: real pool + live telemetry, zero races."""
        states = _states(mini_server)
        telemetry = Telemetry()
        with instrument(
            telemetry.metrics, telemetry.tracer,
            names=("MetricRegistry", "Tracer"),
        ) as san:
            reports = verify_nodes(
                states, FAST_ENGINE, seed=0, max_workers=3,
                telemetry=telemetry,
            )
            races = san.races()
            recorded = san.accesses()
        assert len(reports) == 3
        assert recorded, "sanitizer saw no accesses — instrumentation dead?"
        assert races == [], "\n".join(r.describe() for r in races)

    def test_same_seed_bit_identical_under_sanitizer(self, mini_server):
        """Instrumentation must not perturb trajectories: the sanitized
        run reproduces the plain run exactly."""
        plain = verify_nodes(
            _states(mini_server), FAST_ENGINE, seed=0, max_workers=3
        )
        with instrument():
            sanitized = verify_nodes(
                _states(mini_server), FAST_ENGINE, seed=0, max_workers=3
            )
        assert sanitized == plain

    def test_cluster_states_watched_via_hook(self, mini_server):
        states = _states(mini_server, n=2)
        with instrument() as san:
            verify_nodes(states, FAST_ENGINE, seed=0, max_workers=2)
            names = {record.obj_name for record in san.accesses()}
        assert any(name.startswith("ClusterNode[") for name in names)


# ----------------------------------------------------------------------
# Hash-order probe
# ----------------------------------------------------------------------
@pytest.mark.sanitize
class TestHashOrderProbe:
    def test_ordered_target_is_deterministic(self):
        result = hash_order_probe(
            "lint_fixtures.sanitizer_racy:ordered_trajectory",
            hash_seeds=(0, 1),
        )
        assert result.deterministic, result.describe()

    def test_hash_dependent_target_is_flagged(self):
        result = hash_order_probe(
            "lint_fixtures.sanitizer_racy:hash_dependent_trajectory",
            hash_seeds=(0, 1, 2, 3),
        )
        assert not result.deterministic

    def test_crashing_target_raises(self):
        with pytest.raises(ProbeError):
            hash_order_probe("lint_fixtures.sanitizer_racy:no_such_function")

    def test_bad_target_spec_raises(self):
        with pytest.raises(ValueError, match="module:function"):
            hash_order_probe("not-a-target")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.mark.sanitize
class TestSanitizerCLI:
    def test_probe_deterministic_exits_zero(self, capsys):
        code = san_main(
            ["probe", "lint_fixtures.sanitizer_racy:ordered_trajectory"]
        )
        assert code == 0
        assert "identical output" in capsys.readouterr().out

    def test_probe_nondeterministic_exits_one(self, capsys):
        code = san_main(
            [
                "probe",
                "lint_fixtures.sanitizer_racy:hash_dependent_trajectory",
                "--hash-seeds", "0,1,2,3",
            ]
        )
        assert code == 1
        assert "DIFFERS" in capsys.readouterr().out

    def test_probe_bad_target_exits_two(self, capsys):
        code = san_main(["probe", "nonsense"])
        assert code == 2


# ----------------------------------------------------------------------
# Container (dict) mutation tracking
# ----------------------------------------------------------------------
class _DictHolder:
    """Toy shared object mutating a dict attribute, (un)guarded."""

    def __init__(self):
        self._lock = threading.Lock()
        self.table = {}

    def bump_unguarded(self, n=300):
        for i in range(n):
            self.table[i % 7] = self.table.get(i % 7, 0) + 1

    def bump_guarded(self, n=300):
        for i in range(n):
            with self._lock:
                self.table[i % 7] = self.table.get(i % 7, 0) + 1

    def read_table(self, n=300):
        total = 0
        for i in range(n):
            total += self.table.get(i % 7, 0)
        return total


@pytest.mark.sanitize
class TestContainerTracking:
    def test_unguarded_dict_mutation_race_detected(self):
        """Attribute shadowing alone only sees the fetch of the
        container; item-level tracking must catch ``d[k] = v`` races."""
        holder = _DictHolder()
        with instrument(holder, container_attrs=("table",)) as san:
            run_threads(holder.bump_unguarded, holder.bump_unguarded)
            races = san.races()
        assert any(r.fld == "table[]" for r in races)

    def test_guarded_dict_mutation_is_clean(self):
        holder = _DictHolder()
        with instrument(holder, container_attrs=("table",)) as san:
            run_threads(holder.bump_guarded, holder.bump_guarded)
            races = san.races()
        assert all(r.fld != "table[]" for r in races)

    def test_write_read_container_race_detected(self):
        holder = _DictHolder()
        with instrument(holder, container_attrs=("table",)) as san:
            run_threads(holder.bump_unguarded, holder.read_table)
            races = san.races()
        kinds = {
            frozenset((r.first.kind, r.second.kind))
            for r in races
            if r.fld == "table[]"
        }
        assert frozenset(("write", "read")) in kinds

    def test_mutations_land_on_the_real_dict(self):
        holder = _DictHolder()
        with instrument(holder, container_attrs=("table",)):
            holder.bump_guarded(n=7)
        assert sum(holder.table.values()) == 7

    def test_restore_reinstates_original_container(self):
        holder = _DictHolder()
        original = holder.table
        with instrument(holder, container_attrs=("table",)):
            assert holder.table is not original  # proxied
            holder.bump_guarded(n=3)
        assert holder.table is original
        assert sum(original.values()) == 3

    def test_sequence_attrs_dispatch_by_type(self):
        """watch() picks the proxy per container kind; unknown kinds
        are left unwrapped rather than broken."""
        import collections

        class Holder:
            def __init__(self):
                self.items = []
                self.seen = set()
                self.ring = collections.deque(maxlen=4)
                self.table = {}
                self.opaque = frozenset()

        holder = Holder()
        with instrument(
            holder,
            container_attrs=("items", "seen", "ring", "table", "opaque"),
        ):
            holder.items.append(1)
            holder.seen.add(2)
            holder.ring.append(3)
            holder.table["k"] = 4
            assert holder.opaque == frozenset()  # untouched
        assert holder.items == [1]
        assert holder.seen == {2}
        assert list(holder.ring) == [3]
        assert holder.table == {"k": 4}

    def test_observation_store_self_registers_race_free(self, tmp_path):
        """The store registers itself (entries map included) with an
        active sanitizer; its lock discipline must hold under fire."""
        from repro.server import ObservationStore

        with instrument() as san:
            store = ObservationStore(tmp_path / "obs.jsonl", max_entries=32)
            assert type(store).__name__.startswith("_Sanitized")

            def worker(base):
                for i in range(60):
                    store.put("fp", (base, i), (0.1,), ())
                    store.get("fp", (base, (i * 3) % 60), (0.1,))

            run_threads(lambda: worker(0), lambda: worker(1))
            races = san.races()
        assert races == []

    def test_observation_service_pool_race_free(self, mini_server):
        """Concurrent priming through the service must stay clean: the
        node's cache writes are lock-guarded, the pool is the only
        mutation path, and the serial observe loop sees pure hits."""
        from repro.server import ObservationService

        from conftest import make_node

        with instrument() as san:
            node = make_node(
                mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01
            )
            service = ObservationService(node, parallel=True, workers=4)
            rng_configs = [
                node.space.equal_partition(),
                node.space.max_allocation(0),
                node.space.max_allocation(1),
                node.space.max_allocation(2),
            ]
            service.observe_batch(rng_configs)
            service.close()
            races = san.races()
        assert races == []


# ----------------------------------------------------------------------
# Container (list/set/deque) mutation tracking
# ----------------------------------------------------------------------
class _SeqHolder:
    """Toy shared object appending to a list attribute, (un)guarded."""

    def __init__(self):
        self._lock = threading.Lock()
        self.log = []
        self.tags = set()

    def append_unguarded(self, n=300):
        for i in range(n):
            self.log.append(i)

    def append_guarded(self, n=300):
        for i in range(n):
            with self._lock:
                self.log.append(i)

    def tag_unguarded(self, n=300):
        for i in range(n):
            self.tags.add(i % 11)

    def read_log(self, n=300):
        total = 0
        for _ in range(n):
            total += len(self.log)
        return total


@pytest.mark.sanitize
class TestSequenceTracking:
    def test_cross_thread_list_append_race_detected(self):
        """Two threads calling ``list.append`` with no common lock is
        the race RPL803/RPL805 reason about statically; the shadow
        sequence proxy must see it dynamically too."""
        holder = _SeqHolder()
        with instrument(holder, container_attrs=("log",)) as san:
            run_threads(holder.append_unguarded, holder.append_unguarded)
            races = san.races()
        assert any(r.fld == "log[]" for r in races)

    def test_guarded_list_append_is_clean(self):
        holder = _SeqHolder()
        with instrument(holder, container_attrs=("log",)) as san:
            run_threads(holder.append_guarded, holder.append_guarded)
            races = san.races()
        assert all(r.fld != "log[]" for r in races)

    def test_list_write_read_race_detected(self):
        holder = _SeqHolder()
        with instrument(holder, container_attrs=("log",)) as san:
            run_threads(holder.append_unguarded, holder.read_log)
            races = san.races()
        kinds = {
            frozenset((r.first.kind, r.second.kind))
            for r in races
            if r.fld == "log[]"
        }
        assert frozenset(("write", "read")) in kinds

    def test_set_add_race_detected(self):
        holder = _SeqHolder()
        with instrument(holder, container_attrs=("tags",)) as san:
            run_threads(holder.tag_unguarded, holder.tag_unguarded)
            races = san.races()
        assert any(r.fld == "tags[]" for r in races)

    def test_deque_operations_recorded(self):
        import collections

        class Ring:
            def __init__(self):
                self.ring = collections.deque(maxlen=8)

        ring = Ring()
        with instrument(ring, container_attrs=("ring",)) as san:
            ring.ring.append(1)
            ring.ring.appendleft(0)
            ring.ring.popleft()
            accesses = san.accesses()
        writes = [
            a for a in accesses if a.fld == "ring[]" and a.kind == "write"
        ]
        assert writes and writes[0].count == 3

    def test_restore_reinstates_original_list(self):
        holder = _SeqHolder()
        original = holder.log
        with instrument(holder, container_attrs=("log",)):
            assert holder.log is not original  # proxied
            holder.append_guarded(n=3)
        assert holder.log is original
        assert original == [0, 1, 2]

    def test_node_history_registers_as_sequence(self, mini_server):
        """Node now opts ``_history`` into item-level tracking; serial
        observes must stay race-free with the proxy installed."""
        from conftest import make_node

        with instrument() as san:
            node = make_node(mini_server, lc_loads=(0.4,), n_bg=1)
            node.observe(node.space.equal_partition())
            assert type(node._history).__name__ == "_ShadowSequence"
            races = san.races()
        assert races == []
        assert len(node._history) == 1


@pytest.mark.sanitize
class TestReentrantLockset:
    class _Reentrant:
        """Self-guarding helpers re-take the RLock (the obstore pattern)."""

        def __init__(self):
            self._lock = threading.RLock()
            self.value = 0

        def _bump_inner(self):
            with self._lock:
                self.value += 1

        def bump(self, n=200):
            for _ in range(n):
                with self._lock:
                    self._bump_inner()
                    self.value += 1  # after the inner release

    def test_inner_release_keeps_outer_hold(self):
        """Regression: the held-set dropped an RLock token on the first
        release, so accesses between an inner and the outer release
        looked unguarded and produced false races."""
        obj = self._Reentrant()
        with instrument(obj, names=("Reentrant",)) as san:
            run_threads(obj.bump, obj.bump)
            races = san.races()
        assert all(r.fld != "value" for r in races)
        locksets = {
            rec.lockset
            for rec in san.accesses()
            if rec.fld == "value" and rec.kind == "write"
        }
        assert frozenset() not in locksets
