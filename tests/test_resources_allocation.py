"""Unit and property tests for configurations and the configuration space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import (
    Configuration,
    ConfigurationSpace,
    Resource,
    ServerSpec,
    default_server,
    small_server,
)


@pytest.fixture
def space3():
    """3 jobs on the default server."""
    return ConfigurationSpace(default_server(), 3)


class TestConfiguration:
    def test_from_matrix_and_accessors(self):
        c = Configuration.from_matrix([[1, 2], [3, 4]])
        assert c.n_jobs == 2
        assert c.n_resources == 2
        assert c.get(0, 1) == 2
        assert c.get(1, 0) == 3

    def test_flat_is_job_major(self):
        c = Configuration.from_matrix([[1, 2], [3, 4]])
        assert c.flat() == (1, 2, 3, 4)

    def test_as_array_is_fresh_copy(self):
        c = Configuration.from_matrix([[1, 2], [3, 4]])
        arr = c.as_array()
        arr[0, 0] = 99
        assert c.get(0, 0) == 1

    def test_with_transfer(self):
        c = Configuration.from_matrix([[3, 2], [1, 2]])
        moved = c.with_transfer(0, donor=0, receiver=1)
        assert moved.get(0, 0) == 2
        assert moved.get(1, 0) == 2
        assert moved.resource_column(1) == (2, 2)  # untouched

    def test_with_transfer_preserves_original(self):
        c = Configuration.from_matrix([[3, 2], [1, 2]])
        c.with_transfer(0, donor=0, receiver=1)
        assert c.get(0, 0) == 3

    def test_transfer_below_floor_rejected(self):
        c = Configuration.from_matrix([[1, 2], [3, 2]])
        with pytest.raises(ValueError, match="cannot give away"):
            c.with_transfer(0, donor=0, receiver=1)

    def test_transfer_self_rejected(self):
        c = Configuration.from_matrix([[3, 2], [1, 2]])
        with pytest.raises(ValueError, match="must differ"):
            c.with_transfer(0, donor=1, receiver=1)

    def test_distance(self):
        a = Configuration.from_matrix([[3, 2], [1, 2]])
        b = Configuration.from_matrix([[1, 2], [3, 2]])
        assert a.distance(b) == pytest.approx(np.sqrt(8))
        assert a.distance(a) == 0.0

    def test_job_allocation_and_resource_column(self):
        c = Configuration.from_matrix([[1, 2, 3], [4, 5, 6]])
        assert c.job_allocation(1) == (4, 5, 6)
        assert c.resource_column(2) == (3, 6)


class TestConfigurationSpaceBasics:
    def test_size_matches_paper_formula(self, space3):
        # prod C(units-1, jobs-1) = C(9,2)*C(10,2)*C(9,2) = 36*45*36
        assert space3.size() == 36 * 45 * 36

    def test_paper_example_four_jobs_three_resources_ten_units(self):
        server = ServerSpec(
            resources=(
                Resource("cores", 10),
                Resource("membw", 10),
                Resource("memcap", 10),
            )
        )
        space = ConfigurationSpace(server, 4)
        # Sec. 2: "the total number of possible configurations is 592,704"
        assert space.size() == 592_704

    def test_n_dims(self, space3):
        assert space3.n_dims == 9

    def test_too_many_jobs_rejected(self):
        with pytest.raises(ValueError, match="cannot each get"):
            ConfigurationSpace(small_server(units=4), 5)

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="at least one job"):
            ConfigurationSpace(default_server(), 0)

    def test_validate_accepts_equal_partition(self, space3):
        space3.validate(space3.equal_partition())

    def test_validate_rejects_wrong_sum(self, space3):
        bad = Configuration.from_matrix(
            [[3, 3, 3], [3, 4, 3], [3, 4, 3]]
        )  # cores sum 9 != 10
        with pytest.raises(ValueError, match="must sum to"):
            space3.validate(bad)

    def test_validate_rejects_zero_units(self, space3):
        # repro-lint: disable-next-line=RPL703
        bad = Configuration.from_matrix([[0, 4, 4], [5, 4, 3], [5, 3, 3]])
        with pytest.raises(ValueError, match=">= 1 unit"):
            space3.validate(bad)

    def test_validate_rejects_wrong_shape(self, space3):
        with pytest.raises(ValueError, match="expected 3 jobs"):
            space3.validate(Configuration.from_matrix([[5, 6, 5], [5, 5, 5]]))

    def test_contains(self, space3):
        assert space3.contains(space3.equal_partition())
        assert not space3.contains(Configuration.from_matrix([[10, 11, 10]]))


class TestCanonicalPoints:
    def test_equal_partition_columns_sum(self, space3):
        config = space3.equal_partition()
        assert config.resource_column(0) == (4, 3, 3)  # 10 cores
        assert config.resource_column(1) == (4, 4, 3)  # 11 ways
        assert config.resource_column(2) == (4, 3, 3)  # 10 membw

    def test_max_allocation(self, space3):
        config = space3.max_allocation(1)
        assert config.job_allocation(1) == (8, 9, 8)
        assert config.job_allocation(0) == (1, 1, 1)
        assert config.job_allocation(2) == (1, 1, 1)
        space3.validate(config)

    def test_max_allocation_bad_index(self, space3):
        with pytest.raises(IndexError):
            space3.max_allocation(3)

    def test_single_job_space(self):
        space = ConfigurationSpace(default_server(), 1)
        assert space.size() == 1
        assert space.equal_partition().flat() == (10, 11, 10)


class TestEnumeration:
    def test_enumerate_exact_count(self, tiny_server):
        space = ConfigurationSpace(tiny_server, 2)
        configs = list(space.enumerate())
        assert len(configs) == space.size() == 9  # C(3,1)^2

    def test_enumerate_all_valid_and_unique(self, tiny_server):
        space = ConfigurationSpace(tiny_server, 2)
        seen = set()
        for config in space.enumerate():
            space.validate(config)
            seen.add(config.flat())
        assert len(seen) == space.size()

    def test_strided_enumeration_subset(self, tiny_server):
        space = ConfigurationSpace(tiny_server, 2)
        strided = {c.flat() for c in space.enumerate(stride=2)}
        full = {c.flat() for c in space.enumerate()}
        assert strided <= full
        assert len(strided) < len(full)

    def test_strided_size_matches_enumeration(self, space3):
        for stride in (1, 2, 3):
            assert space3.strided_size(stride) == sum(
                1 for _ in space3.enumerate(stride=stride)
            )

    def test_bad_stride(self, space3):
        with pytest.raises(ValueError):
            list(space3.enumerate(stride=0))

    def test_neighbors_are_valid_and_one_transfer_away(self, space3):
        config = space3.equal_partition()
        neighbors = list(space3.neighbors(config))
        assert neighbors
        for n in neighbors:
            space3.validate(n)
            diff = np.abs(n.as_array() - config.as_array())
            assert diff.sum() == 2  # one unit moved

    def test_neighbors_count(self, tiny_server):
        space = ConfigurationSpace(tiny_server, 2)
        config = space.equal_partition()  # (2,2) per resource
        # per resource: 2 donors x 1 receiver = 2 moves, 2 resources
        assert len(list(space.neighbors(config))) == 4


class TestUnitCube:
    def test_roundtrip_equal_partition(self, space3):
        config = space3.equal_partition()
        assert space3.from_unit_cube(space3.to_unit_cube(config)) == config

    def test_roundtrip_extrema(self, space3):
        for j in range(3):
            config = space3.max_allocation(j)
            assert space3.from_unit_cube(space3.to_unit_cube(config)) == config

    def test_cube_values_in_unit_interval(self, space3):
        rng = np.random.default_rng(0)
        for _ in range(20):
            cube = space3.to_unit_cube(space3.random(rng))
            assert (cube >= 0).all() and (cube <= 1).all()

    def test_from_unit_cube_always_valid(self, space3):
        rng = np.random.default_rng(1)
        for _ in range(50):
            z = rng.random(space3.n_dims)
            space3.validate(space3.from_unit_cube(z))

    def test_from_all_zeros(self, space3):
        space3.validate(space3.from_unit_cube(np.zeros(space3.n_dims)))

    def test_bounds_shape(self, space3):
        bounds = space3.bounds()
        assert bounds.shape == (9, 2)
        assert (bounds[:, 0] == 0).all() and (bounds[:, 1] == 1).all()

    def test_degenerate_resource_span(self):
        server = ServerSpec(resources=(Resource("cores", 2),))
        space = ConfigurationSpace(server, 2)
        config = space.equal_partition()
        cube = space.to_unit_cube(config)
        assert (cube == 0).all()
        assert space.from_unit_cube(cube) == config


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@st.composite
def spaces(draw):
    n_res = draw(st.integers(1, 3))
    n_jobs = draw(st.integers(1, 4))
    units = [draw(st.integers(n_jobs, n_jobs + 8)) for _ in range(n_res)]
    server = ServerSpec(
        resources=tuple(Resource(f"r{i}", u) for i, u in enumerate(units))
    )
    return ConfigurationSpace(server, n_jobs)


@given(spaces(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_configs_are_always_valid(space, seed):
    rng = np.random.default_rng(seed)
    config = space.random(rng)
    space.validate(config)


@given(spaces(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_unit_cube_roundtrip_identity(space, seed):
    rng = np.random.default_rng(seed)
    config = space.random(rng)
    assert space.from_unit_cube(space.to_unit_cube(config)) == config


@given(spaces(), st.data())
@settings(max_examples=60, deadline=None)
def test_from_unit_cube_projects_anything_valid(space, data):
    z = data.draw(
        st.lists(
            st.floats(0, 1, allow_nan=False),
            min_size=space.n_dims,
            max_size=space.n_dims,
        )
    )
    space.validate(space.from_unit_cube(z))


@given(spaces(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_neighbors_preserve_column_sums(space, seed):
    rng = np.random.default_rng(seed)
    config = space.random(rng)
    for neighbor in space.neighbors(config):
        space.validate(neighbor)
