"""Unit tests for experiment-artifact serialization."""

import pytest

from repro.experiments import (
    LoadGrid,
    MixSpec,
    grid_from_dict,
    grid_to_dict,
    load_grid,
    save_grid,
    save_json,
    load_json,
    trial_to_dict,
    run_trial,
)
from repro.schedulers import PartiesPolicy
from repro.server import NodeBudget
from repro.workloads import LoadSchedule


@pytest.fixture
def grid():
    return LoadGrid(
        row_job="img-dnn",
        col_job="masstree",
        row_loads=(0.1, 0.5),
        col_loads=(0.2,),
        cells=((0.8,), (None,)),
        policy="CLITE",
    )


class TestGridRoundtrip:
    def test_dict_roundtrip(self, grid):
        assert grid_from_dict(grid_to_dict(grid)) == grid

    def test_none_cells_preserved(self, grid):
        data = grid_to_dict(grid)
        assert data["cells"][1][0] is None
        assert grid_from_dict(data).cell(1, 0) is None

    def test_file_roundtrip(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        assert load_grid(path) == grid

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a load_grid"):
            grid_from_dict({"kind": "trial"})

    def test_json_is_plain(self, grid, tmp_path):
        import json

        path = tmp_path / "grid.json"
        save_grid(grid, path)
        payload = json.loads(path.read_text())
        assert payload["policy"] == "CLITE"
        assert payload["row_loads"] == [0.1, 0.5]


class TestTrialSerialization:
    @pytest.fixture
    def trial(self):
        mix = MixSpec.of(lc=[("memcached", 0.2)], bg=["swaptions"])
        return run_trial(mix, PartiesPolicy(), seed=0, budget=NodeBudget(25))

    def test_trial_summary_fields(self, trial):
        data = trial_to_dict(trial)
        assert data["kind"] == "trial"
        assert data["policy"] == "PARTIES"
        assert data["mix"]["lc"] == [["memcached", 0.2]]
        assert data["mix"]["bg"] == ["swaptions"]
        assert isinstance(data["qos_met"], bool)
        assert data["samples"] == trial.samples

    def test_best_config_matrix(self, trial):
        data = trial_to_dict(trial)
        matrix = data["best_config"]
        assert matrix is not None
        assert len(matrix) == 2  # two jobs
        assert all(isinstance(v, int) for row in matrix for v in row)

    def test_dynamic_load_marked(self):
        mix = MixSpec.of(
            lc=[("memcached", LoadSchedule.constant(0.2))], bg=["swaptions"]
        )
        trial = run_trial(mix, PartiesPolicy(), seed=0, budget=NodeBudget(20))
        data = trial_to_dict(trial)
        assert data["mix"]["lc"] == [["memcached", "dynamic"]]

    def test_save_load_json(self, trial, tmp_path):
        path = tmp_path / "trial.json"
        save_json(trial_to_dict(trial), path)
        assert load_json(path)["policy"] == "PARTIES"
