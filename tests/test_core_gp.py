"""Unit tests for the Gaussian-process surrogate."""

import numpy as np
import pytest

from repro.core import RBF, GaussianProcess, Matern52


@pytest.fixture
def simple_data():
    rng = np.random.default_rng(0)
    x = rng.random((15, 2))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
    return x, y


class TestFit:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_fit_returns_self(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess()
        assert gp.fit(x, y) is gp
        assert gp.is_fitted
        assert gp.n_samples == 15

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="points but"):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((0, 2)), np.zeros(0))

    def test_nonfinite_rejected(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError, match="finite"):
            gp.fit(np.array([[0.0, np.inf]]), np.array([1.0]))
        with pytest.raises(ValueError, match="finite"):
            gp.fit(np.array([[0.0, 0.0]]), np.array([np.nan]))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(noise=-1e-3)

    def test_refit_replaces_data(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess().fit(x, y)
        gp.fit(x[:5], y[:5])
        assert gp.n_samples == 5


class TestPredict:
    def test_interpolates_training_points(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert (std < 0.05).all()

    def test_uncertainty_grows_away_from_data(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        _, std_near = gp.predict(x[:1])
        _, std_far = gp.predict(np.array([[10.0, 10.0]]))
        assert std_far[0] > std_near[0]

    def test_far_field_reverts_to_mean(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess().fit(x, y)
        mean, _ = gp.predict(np.array([[100.0, 100.0]]))
        assert mean[0] == pytest.approx(y.mean(), abs=0.1)

    def test_std_nonnegative(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess().fit(x, y)
        _, std = gp.predict(np.random.default_rng(1).random((50, 2)))
        assert (std >= 0).all()

    def test_constant_targets_handled(self):
        x = np.random.default_rng(2).random((6, 2))
        gp = GaussianProcess().fit(x, np.full(6, 3.0))
        mean, std = gp.predict(x)
        assert np.allclose(mean, 3.0, atol=1e-6)

    def test_single_sample(self):
        gp = GaussianProcess().fit(np.array([[0.5, 0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.05)

    def test_prediction_shapes(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess().fit(x, y)
        mean, std = gp.predict(np.zeros((7, 2)))
        assert mean.shape == (7,) and std.shape == (7,)


class TestConfiguration:
    def test_custom_kernel_respected(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess(kernel=RBF(lengthscale=0.2), adapt_lengthscale=False)
        gp.fit(x, y)
        assert isinstance(gp.kernel, RBF)
        assert gp.kernel.lengthscale == 0.2

    def test_adaptive_lengthscale_changes(self, simple_data):
        x, y = simple_data
        gp = GaussianProcess(kernel=Matern52(lengthscale=99.0))
        gp.fit(x, y)
        assert gp.kernel.lengthscale != 99.0

    def test_noise_regularizes(self, simple_data):
        x, y = simple_data
        noisy_y = y + np.random.default_rng(3).normal(0, 0.3, len(y))
        smooth = GaussianProcess(noise=0.5).fit(x, noisy_y)
        sharp = GaussianProcess(noise=1e-8).fit(x, noisy_y)
        mean_smooth, _ = smooth.predict(x)
        mean_sharp, _ = sharp.predict(x)
        # The high-noise GP should NOT chase the noisy targets exactly.
        assert np.abs(mean_sharp - noisy_y).mean() < np.abs(
            mean_smooth - noisy_y
        ).mean()

    def test_duplicated_points_do_not_crash(self):
        x = np.vstack([np.full((5, 2), 0.5), np.full((5, 2), 0.5)])
        y = np.concatenate([np.ones(5), np.ones(5) * 1.01])
        gp = GaussianProcess().fit(x, y)
        mean, _ = gp.predict(np.full((1, 2), 0.5))
        assert mean[0] == pytest.approx(1.005, abs=0.02)
