"""Unit and integration tests for the persistent observation store."""

import json
import threading

import numpy as np
import pytest

from conftest import make_node
from repro.server import ObservationStore, node_fingerprint
from repro.server.obstore import SCHEMA_KIND, SCHEMA_VERSION


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "observations.jsonl"


def sweep(node, n=12, rng_seed=5):
    """Observe ``n`` distinct random configurations (replayable by seed)."""
    rng = np.random.default_rng(rng_seed)
    configs, seen = [], set()
    while len(configs) < n:
        config = node.space.random(rng)
        if config.flat() not in seen:
            seen.add(config.flat())
            configs.append(config)
    observations = [node.observe(c) for c in configs]
    return configs, observations


class TestFingerprint:
    def test_same_physics_same_fingerprint(self, mini_server):
        a = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1)
        b = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, seed=99)
        fp_a = node_fingerprint(mini_server, a.jobs, a.window_s)
        fp_b = node_fingerprint(mini_server, b.jobs, b.window_s)
        # The noise seed must NOT enter the fingerprint: truths are
        # noise-free, and noise is drawn fresh per window either way.
        assert fp_a == fp_b

    def test_window_length_changes_fingerprint(self, mini_server):
        node = make_node(mini_server)
        assert node_fingerprint(
            mini_server, node.jobs, 2.0
        ) != node_fingerprint(mini_server, node.jobs, 4.0)

    def test_workload_set_changes_fingerprint(self, mini_server):
        one_bg = make_node(mini_server, lc_loads=(0.4,), n_bg=1)
        two_bg = make_node(mini_server, lc_loads=(0.4,), n_bg=2)
        assert node_fingerprint(
            mini_server, one_bg.jobs, 2.0
        ) != node_fingerprint(mini_server, two_bg.jobs, 2.0)

    def test_storeless_node_has_no_fingerprint(self, mini_server):
        assert make_node(mini_server).fingerprint is None


class TestRoundTrip:
    def test_truths_survive_a_restart(self, mini_server, store_path):
        """A fresh store object on a fresh node replays the file for free."""
        with ObservationStore(store_path) as store:
            node = make_node(mini_server, store=store)
            configs, originals = sweep(node)
            assert node.physics_computations == len(configs)

        with ObservationStore(store_path) as warm:
            assert warm.stats().loaded == len(configs)
            replay_node = make_node(mini_server, store=warm)
            _, replays = sweep(replay_node)
            assert replay_node.physics_computations == 0
            assert warm.stats().hits == len(configs)
        # Noise-free nodes: replayed readings are bit-identical (JSON
        # round-trips floats exactly).
        for original, replay in zip(originals, replays):
            assert original.jobs == replay.jobs

    def test_noise_drawn_fresh_despite_warm_store(
        self, mini_server, store_path
    ):
        with ObservationStore(store_path) as store:
            sweep(make_node(mini_server, noise=0.01, seed=3, store=store))

        with ObservationStore(store_path) as warm:
            cold_node = make_node(mini_server, noise=0.01, seed=3)
            warm_node = make_node(mini_server, noise=0.01, seed=3, store=warm)
            _, expected = sweep(cold_node)
            _, observed = sweep(warm_node)
            assert warm_node.physics_computations == 0
        # Same seed -> same noisy readings, with or without the store.
        for want, got in zip(expected, observed):
            assert want.jobs == got.jobs

    def test_shared_across_nodes_in_one_process(self, mini_server, store_path):
        with ObservationStore(store_path) as store:
            configs, _ = sweep(make_node(mini_server, store=store))
            twin = make_node(mini_server, store=store)
            for config in configs:
                twin.observe(config)
            assert twin.physics_computations == 0

    def test_different_fingerprint_misses(self, mini_server, store_path):
        with ObservationStore(store_path) as store:
            configs, _ = sweep(make_node(mini_server, store=store))
            other = make_node(mini_server, lc_loads=(0.5,), n_bg=2, store=store)
            rng = np.random.default_rng(5)
            other.observe(other.space.random(rng))
            assert other.physics_computations == 1


class TestLRUBounds:
    def test_eviction_at_capacity(self, mini_server, store_path):
        store = ObservationStore(store_path, max_entries=5)
        node = make_node(mini_server, store=store)
        sweep(node, n=12)
        assert len(store) == 5
        assert store.stats().evictions == 12 - 5

    def test_capacity_enforced_on_reload(self, mini_server, store_path):
        with ObservationStore(store_path) as store:
            sweep(make_node(mini_server, store=store), n=12)
        small = ObservationStore(store_path, max_entries=3)
        assert len(small) == 3

    def test_get_refreshes_recency(self, store_path):
        store = ObservationStore(store_path, max_entries=2)
        store.put("fp", (1,), (0.1,), ())
        store.put("fp", (2,), (0.1,), ())
        assert store.get("fp", (1,), (0.1,)) is not None  # refresh (1,)
        store.put("fp", (3,), (0.1,), ())  # evicts (2,), not (1,)
        assert store.get("fp", (1,), (0.1,)) is not None
        assert store.get("fp", (2,), (0.1,)) is None

    def test_invalid_capacity_rejected(self, store_path):
        with pytest.raises(ValueError, match="max_entries"):
            ObservationStore(store_path, max_entries=0)


class TestCorruptionTolerance:
    def _write_valid_store(self, mini_server, store_path, n=6):
        with ObservationStore(store_path) as store:
            node = make_node(mini_server, store=store)
            configs, _ = sweep(node, n=n)
        return configs

    def test_truncated_line_skipped(self, mini_server, store_path):
        self._write_valid_store(mini_server, store_path)
        lines = store_path.read_text().splitlines()
        lines[3] = lines[3][: len(lines[3]) // 2]
        store_path.write_text("\n".join(lines) + "\n")
        store = ObservationStore(store_path)
        assert store.stats().corrupt == 1
        assert store.stats().loaded == 5

    def test_garbage_lines_skipped(self, mini_server, store_path):
        self._write_valid_store(mini_server, store_path)
        with open(store_path, "a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"fp": "x"}) + "\n")  # missing fields
        store = ObservationStore(store_path)
        assert store.stats().corrupt == 2
        assert store.stats().loaded == 6

    def test_wrong_header_discards_file(self, mini_server, store_path):
        self._write_valid_store(mini_server, store_path)
        lines = store_path.read_text().splitlines()
        lines[0] = json.dumps({"schema": "something-else", "version": 1})
        store_path.write_text("\n".join(lines) + "\n")
        store = ObservationStore(store_path)
        assert len(store) == 0
        assert store.stats().corrupt == 1

    def test_future_version_discards_file(self, mini_server, store_path):
        self._write_valid_store(mini_server, store_path)
        lines = store_path.read_text().splitlines()
        lines[0] = json.dumps(
            {"schema": SCHEMA_KIND, "version": SCHEMA_VERSION + 1}
        )
        store_path.write_text("\n".join(lines) + "\n")
        assert len(ObservationStore(store_path)) == 0

    def test_missing_file_is_empty_store(self, store_path):
        store = ObservationStore(store_path)
        assert len(store) == 0
        assert store.stats().corrupt == 0

    def test_empty_file_is_empty_store(self, store_path):
        store_path.write_text("")
        assert len(ObservationStore(store_path)) == 0


class TestCompaction:
    def test_file_stays_bounded(self, mini_server, store_path):
        store = ObservationStore(store_path, max_entries=4)
        node = make_node(mini_server, store=store)
        sweep(node, n=40, rng_seed=1)
        sweep(make_node(mini_server, store=store), n=40, rng_seed=2)
        store.flush()
        lines = store_path.read_text().splitlines()
        # Compaction keeps the file at header + live entries, never the
        # full append history.
        assert len(lines) <= max(2 * store.max_entries, 64) + 1
        assert json.loads(lines[0])["schema"] == SCHEMA_KIND

    def test_compacted_file_reloads(self, mini_server, store_path):
        store = ObservationStore(store_path, max_entries=4)
        node = make_node(mini_server, store=store)
        sweep(node, n=80, rng_seed=1)
        store.close()
        reloaded = ObservationStore(store_path, max_entries=4)
        assert len(reloaded) == 4


class TestConcurrency:
    def test_parallel_puts_and_gets(self, store_path):
        store = ObservationStore(store_path, max_entries=64)
        errors = []

        def worker(base):
            try:
                for i in range(50):
                    store.put("fp", (base, i), (0.1,), ())
                    store.get("fp", (base, (i * 7) % 50), (0.1,))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == 64
