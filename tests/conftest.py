"""Shared fixtures: small servers, hand-calibrated workloads, fast nodes."""

from __future__ import annotations

import pytest

from repro.resources import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    Resource,
    ServerSpec,
    default_server,
    small_server,
)
from repro.server import Job, Node, PerformanceCounters
from repro.workloads import (
    BGWorkload,
    LCWorkload,
    ResourceProfile,
    SensitivityCurve,
)


@pytest.fixture
def server():
    """The paper's three-resource testbed (10 cores, 11 ways, 10 membw)."""
    return default_server()


@pytest.fixture
def tiny_server():
    """A 4-unit, 2-resource server for exhaustive checks."""
    return small_server(units=4, n_resources=2)


@pytest.fixture
def mini_server():
    """A 6-unit, 3-resource server: big enough to be interesting, small
    enough for exhaustive oracle sweeps in tests."""
    return ServerSpec(
        resources=(
            Resource(CORES, 6),
            Resource(LLC_WAYS, 6),
            Resource(MEMORY_BANDWIDTH, 6),
        )
    )


def make_lc(
    name: str = "lc",
    base_service_rate: float = 1000.0,
    serial_fraction: float = 0.3,
    qos_latency_ms: float = 10.0,
    max_qps: float = 2000.0,
    llc_weight: float = 0.8,
    membw_weight: float = 0.8,
) -> LCWorkload:
    """A hand-calibrated LC workload (no knee sweep needed)."""
    return LCWorkload(
        name=name,
        description="test LC workload",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=llc_weight, shape=3.0, floor=0.2),
                MEMORY_BANDWIDTH: SensitivityCurve(
                    weight=membw_weight, shape=3.0, floor=0.2
                ),
            }
        ),
        base_service_rate=base_service_rate,
        serial_fraction=serial_fraction,
        qos_latency_ms=qos_latency_ms,
        max_qps=max_qps,
    )


def make_bg(name: str = "bg", membw_weight: float = 1.0) -> BGWorkload:
    """A throughput workload with core + bandwidth sensitivity."""
    return BGWorkload(
        name=name,
        description="test BG workload",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=0.5, shape=3.0, floor=0.2),
                MEMORY_BANDWIDTH: SensitivityCurve(
                    weight=membw_weight, shape=2.0, floor=0.15
                ),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=1.0, floor=0.0),
    )


@pytest.fixture
def lc_workload_fixture():
    return make_lc()


@pytest.fixture
def bg_workload_fixture():
    return make_bg()


def make_node(
    server: ServerSpec,
    lc_loads=((0.4,),),
    n_bg: int = 1,
    seed: int = 0,
    noise: float = 0.0,
    window_s: float = 2.0,
    store=None,
) -> Node:
    """A deterministic node with hand-calibrated synthetic workloads.

    ``lc_loads`` is a sequence of per-LC-job load fractions (each spawns
    one LC job); ``n_bg`` BG jobs are appended.  ``store`` attaches a
    shared :class:`~repro.server.obstore.ObservationStore`.
    """
    jobs = []
    loads = [l[0] if isinstance(l, tuple) else l for l in lc_loads]
    for i, load in enumerate(loads):
        jobs.append(Job.lc(make_lc(name=f"lc{i}"), load))
    for i in range(n_bg):
        jobs.append(Job.bg(make_bg(name=f"bg{i}")))
    counters = PerformanceCounters(relative_std=noise, seed=seed)
    return Node(
        server, jobs, counters=counters, window_s=window_s, store=store
    )


@pytest.fixture
def quiet_node(mini_server):
    """2 LC + 1 BG on the mini server, noise-free."""
    return make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.0)
