"""Unit and property tests for GP covariance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import RBF, Matern52, median_lengthscale


@pytest.fixture
def points():
    rng = np.random.default_rng(0)
    return rng.random((8, 3))


class TestKernelBasics:
    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_diagonal_equals_variance(self, kernel_cls, points):
        kernel = kernel_cls(lengthscale=0.4, variance=2.0)
        gram = kernel(points, points)
        assert np.allclose(np.diag(gram), 2.0)

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_symmetry(self, kernel_cls, points):
        kernel = kernel_cls()
        gram = kernel(points, points)
        assert np.allclose(gram, gram.T)

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_positive_semidefinite(self, kernel_cls, points):
        kernel = kernel_cls(lengthscale=0.3)
        gram = kernel(points, points)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_decreases_with_distance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=0.5)
        origin = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[0.9, 0.0]])
        assert kernel(origin, near)[0, 0] > kernel(origin, far)[0, 0]

    @pytest.mark.parametrize("kernel_cls", [Matern52, RBF])
    def test_cross_covariance_shape(self, kernel_cls):
        kernel = kernel_cls()
        a = np.zeros((3, 4))
        b = np.ones((5, 4))
        assert kernel(a, b).shape == (3, 5)

    def test_dimension_mismatch_rejected(self):
        kernel = Matern52()
        with pytest.raises(ValueError, match="dimension mismatch"):
            kernel(np.zeros((2, 3)), np.zeros((2, 4)))

    @pytest.mark.parametrize(
        "kwargs", [{"lengthscale": 0.0}, {"lengthscale": -1.0}, {"variance": 0.0}]
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            Matern52(**kwargs)

    def test_with_lengthscale(self):
        kernel = Matern52(lengthscale=0.3, variance=2.0)
        updated = kernel.with_lengthscale(0.7)
        assert updated.lengthscale == 0.7
        assert updated.variance == 2.0
        assert kernel.lengthscale == 0.3

    def test_matern_less_smooth_than_rbf_nearby(self):
        """Matérn-5/2 decays faster than RBF at small distances."""
        m = Matern52(lengthscale=0.5)
        r = RBF(lengthscale=0.5)
        origin = np.zeros((1, 1))
        near = np.array([[0.2]])
        assert m(origin, near)[0, 0] < r(origin, near)[0, 0]


class TestMedianLengthscale:
    def test_single_point_fallback(self):
        assert median_lengthscale(np.zeros((1, 3)), fallback=0.25) == 0.25

    def test_identical_points_fallback(self):
        x = np.ones((5, 2))
        assert median_lengthscale(x, fallback=0.3) == 0.3

    def test_scales_with_spread(self):
        rng = np.random.default_rng(1)
        tight = rng.random((20, 3)) * 0.1
        wide = rng.random((20, 3))
        assert median_lengthscale(tight) < median_lengthscale(wide)

    def test_scale_factor(self):
        rng = np.random.default_rng(2)
        x = rng.random((10, 2))
        assert median_lengthscale(x, scale=1.0) == pytest.approx(
            2 * median_lengthscale(x, scale=0.5)
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            median_lengthscale(np.zeros((2, 2)), scale=0.0)


@given(
    x=arrays(
        np.float64,
        (6, 2),
        elements=st.floats(0, 1, allow_nan=False, allow_infinity=False),
    ),
    lengthscale=st.floats(0.05, 2.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_matern_gram_always_psd(x, lengthscale):
    kernel = Matern52(lengthscale=lengthscale)
    gram = kernel(x, x)
    assert np.linalg.eigvalsh(gram).min() > -1e-7
    assert np.all(gram <= kernel.variance + 1e-12)
