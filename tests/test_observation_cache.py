"""The node's observation cache: correctness and counter semantics.

Only the noise-free *truth* of a (partition, LC loads) point is cached;
counter noise is drawn fresh for every window.  So readings — noisy or
not — must be bit-identical with and without the cache, and the
hit/miss counters must reflect exactly which lattice points were
revisited.
"""

import numpy as np
import pytest

from repro.core import CLITEConfig, CLITEEngine
from repro.server import Job, Node, NodeBudget, PerformanceCounters

from conftest import make_bg, make_lc, make_node


def _twin_nodes(mini_server, noise):
    """Two identical nodes, one with the cache disabled."""
    return (
        make_node(mini_server, lc_loads=(0.4,), n_bg=1, noise=noise),
        Node(
            mini_server,
            [Job.lc(make_lc(name="lc0"), 0.4), Job.bg(make_bg(name="bg0"))],
            counters=PerformanceCounters(relative_std=noise, seed=0),
            cache_enabled=False,
        ),
    )


def test_repeat_observation_hits_cache(quiet_node):
    config = quiet_node.space.equal_partition()
    quiet_node.observe(config)
    assert quiet_node.cache_info() == (0, 1)
    quiet_node.observe(config)
    quiet_node.observe(config)
    assert quiet_node.cache_info() == (2, 1)
    other = quiet_node.space.max_allocation(0)
    quiet_node.observe(other)
    assert quiet_node.cache_info() == (2, 2)


def test_cached_readings_identical_noise_free(mini_server):
    cached, uncached = _twin_nodes(mini_server, noise=0.0)
    config = cached.space.equal_partition()
    for node in (cached, uncached):
        node.observe(config)
        node.observe(config)
    assert uncached.cache_info() == (0, 0)
    for a, b in zip(cached.history, uncached.history):
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja == jb


def test_noise_drawn_fresh_despite_cache(mini_server):
    """Cache on or off, noisy runs see the exact same reading stream:
    the truth is memoized, the noise stream is not."""
    cached, uncached = _twin_nodes(mini_server, noise=0.05)
    config = cached.space.equal_partition()
    readings_cached = [cached.observe(config) for _ in range(4)]
    readings_uncached = [uncached.observe(config) for _ in range(4)]
    assert cached.cache_info() == (3, 1)
    lat_cached = [o.jobs[0].p95_ms for o in readings_cached]
    lat_uncached = [o.jobs[0].p95_ms for o in readings_uncached]
    assert lat_cached == lat_uncached
    # And the windows genuinely differ from each other (noise is live).
    assert len(set(lat_cached)) > 1


def test_lc_load_change_misses_cache(mini_server):
    """The key includes the LC load fractions, so the same partition at
    a different load is a different truth — no stale hits."""
    from repro.workloads import LoadSchedule

    node = Node(
        mini_server,
        [
            Job(make_lc(name="lc0"), LoadSchedule.steps([(0.0, 0.3), (2.0, 0.7)])),
            Job.bg(make_bg(name="bg0")),
        ],
        counters=PerformanceCounters(relative_std=0.0, seed=0),
    )
    config = node.space.equal_partition()
    first = node.observe(config)  # t=0, load 0.3
    second = node.observe(config)  # t=2, load 0.7
    assert node.cache_info() == (0, 2)
    assert first.jobs[0].p95_ms != second.jobs[0].p95_ms


def test_reset_clears_counters_keeps_truths(quiet_node):
    config = quiet_node.space.equal_partition()
    quiet_node.observe(config)
    quiet_node.observe(config)
    quiet_node.reset()
    assert quiet_node.cache_info() == (0, 0)
    quiet_node.observe(config)
    # The truth survived the reset: first post-reset observe is a hit.
    assert quiet_node.cache_info() == (1, 0)


def test_cache_size_cap(mini_server):
    node = make_node(mini_server, lc_loads=(0.4,), n_bg=1)
    node.CACHE_MAX_ENTRIES = 2
    rng = np.random.default_rng(0)
    seen = set()
    while len(seen) < 4:
        config = node.space.random(rng)
        seen.add(config.flat())
        node.observe(config)
    assert len(node._obs_cache) <= 2


def test_engine_result_reports_cache_counters(quiet_node):
    result = CLITEEngine(
        quiet_node, CLITEConfig(seed=0, max_iterations=20)
    ).optimize()
    hits, misses = quiet_node.cache_info()
    assert result.cache_hits == hits
    assert result.cache_misses == misses
    assert result.cache_misses > 0
    # The engine's confirmation re-observations guarantee revisits.
    assert result.cache_hits > 0


def test_engine_counters_are_per_run_deltas(quiet_node):
    first = CLITEEngine(
        quiet_node, CLITEConfig(seed=0, max_iterations=15)
    ).optimize()
    counters_after_first = quiet_node.cache_info()
    assert (first.cache_hits, first.cache_misses) == counters_after_first
    # Without a reset the node's counters keep accumulating; the second
    # result must report only its own run's delta.
    second = CLITEEngine(
        quiet_node, CLITEConfig(seed=1, max_iterations=15)
    ).optimize()
    hits, misses = quiet_node.cache_info()
    assert second.cache_hits == hits - counters_after_first[0]
    assert second.cache_misses == misses - counters_after_first[1]
