"""The warehouse service: event core, admission, migration, determinism."""

from __future__ import annotations

import pytest

from conftest import make_bg, make_lc
from repro.core import CLITEConfig
from repro.telemetry import Telemetry
from repro.telemetry.clock import SimulatedClock
from repro.telemetry.serve import parse_series
from repro.server import ObservationStore
from repro.warehouse import (
    Arrival,
    Departure,
    EventLoop,
    EventQueue,
    MigrationModel,
    QuickProbe,
    Recheck,
    ScenarioConfig,
    WarehouseJob,
    WarehouseService,
    load_into,
    synthesize,
)
from repro.workloads import LoadSchedule

#: Small engine budgets for full-CLITE probes in tests.
FAST_ENGINE = CLITEConfig(
    max_iterations=10,
    post_qos_iterations=3,
    refine_budget=5,
    confirm_top=1,
    n_restarts=3,
)


def lc_job(name, load, qos_latency_ms=10.0):
    return WarehouseJob.lc(
        make_lc(name, qos_latency_ms=qos_latency_ms), load, name
    )


def bg_job(name):
    return WarehouseJob.bg(make_bg(name), name)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, Departure("b"))
        queue.push(1.0, Departure("a"))
        queue.push(3.0, Departure("c"))
        times = [queue.pop()[0] for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_pop_in_submission_order(self):
        queue = EventQueue()
        first = queue.push(2.0, Departure("first"))
        second = queue.push(2.0, Departure("second"))
        assert second == first + 1
        assert queue.pop()[2] == Departure("first")
        assert queue.pop()[2] == Departure("second")

    def test_peek_and_last_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert queue.last_time() is None
        queue.push(4.0, Recheck())
        queue.push(9.0, Recheck())
        assert queue.peek_time() == 4.0
        assert queue.last_time() == 9.0
        assert len(queue) == 2 and bool(queue)


class TestEventLoop:
    def test_rejects_scheduling_in_the_past(self):
        loop = EventLoop()
        loop.clock.tick(10.0)
        with pytest.raises(ValueError, match="cannot schedule"):
            loop.schedule(5.0, Recheck())

    def test_rejects_running_backwards(self):
        loop = EventLoop()
        loop.clock.tick(10.0)
        with pytest.raises(ValueError, match="cannot run"):
            loop.run_until(5.0, lambda *a: None)

    def test_clock_lands_exactly_on_target(self):
        loop = EventLoop()
        loop.schedule(3.0, Recheck())
        loop.run_until(7.5, lambda *a: None)
        assert loop.now_s == 7.5

    def test_recheck_ticks_interleave_after_same_time_events(self):
        loop = EventLoop(recheck_period_s=10.0)
        loop.schedule(10.0, Departure("at-tick-time"))
        loop.schedule(25.0, Departure("later"))
        seen = []
        loop.run_until(30.0, lambda t, seq, p: seen.append((t, type(p).__name__)))
        assert seen == [
            (10.0, "Departure"),  # heap events beat the tick at t=10
            (10.0, "Recheck"),
            (20.0, "Recheck"),
            (25.0, "Departure"),
            (30.0, "Recheck"),
        ]

    def test_clock_advances_monotonically_through_handlers(self):
        loop = EventLoop()
        loop.schedule(2.0, Recheck())
        loop.schedule(6.0, Recheck())
        times = []
        loop.run_until(8.0, lambda t, seq, p: times.append(loop.now_s))
        assert times == [2.0, 6.0]


class TestWarehouseJob:
    def test_lc_requires_schedule(self):
        with pytest.raises(ValueError, match="needs a load schedule"):
            WarehouseJob(make_lc("a"), "a")

    def test_bg_refuses_schedule(self):
        with pytest.raises(ValueError, match="does not take"):
            WarehouseJob(make_bg("b"), "b", LoadSchedule.constant(0.5))

    def test_load_clamped_into_probe_range(self):
        job = WarehouseJob.lc(
            make_lc("a"), LoadSchedule.steps([(0.0, 0.0), (10.0, 1.4)]), "a"
        )
        assert job.load_at(0.0) == pytest.approx(0.01)
        assert job.load_at(10.0) == pytest.approx(1.0)
        assert bg_job("b").load_at(5.0) is None

    def test_float_becomes_constant_schedule(self):
        job = lc_job("a", 0.4)
        assert job.load_at(0.0) == job.load_at(1e6) == pytest.approx(0.4)


class TestMigrationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationModel(cost_s=-1.0)
        with pytest.raises(ValueError):
            MigrationModel(max_evictions_per_check=0)

    def test_victim_prefers_bg_then_lightest_lc(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        lc_heavy = JobRequest(make_lc("heavy"), 0.9, name="heavy")
        lc_light = JobRequest(make_lc("light"), 0.2, name="light")
        bg = JobRequest(make_bg("noise"), name="noise")
        model = MigrationModel()
        node = ClusterNode(0, mini_server, [lc_heavy, lc_light, bg])
        assert model.select_victim(node, 0.0).request_name == "noise"
        node = ClusterNode(0, mini_server, [lc_heavy, lc_light])
        assert model.select_victim(node, 0.0).request_name == "light"
        node = ClusterNode(0, mini_server, [lc_heavy])
        assert model.select_victim(node, 0.0) is None


class TestQuickProbe:
    def test_bg_only_node_always_passes(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        node = ClusterNode(0, mini_server, [JobRequest(make_bg("b"), name="b")])
        assert QuickProbe().check(node, seed=0)

    def test_infeasible_pair_rejected_feasible_singles_pass(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        probe = QuickProbe()

        def node_of(loads):
            requests = [
                JobRequest(
                    make_lc(f"w{i}", qos_latency_ms=6.0), load, name=f"w{i}"
                )
                for i, load in enumerate(loads)
            ]
            return ClusterNode(0, mini_server, requests)

        assert probe.check(node_of([1.0]), seed=0)
        assert probe.check(node_of([0.85]), seed=0)
        assert not probe.check(node_of([1.0, 0.85]), seed=0)


class TestServiceBasics:
    def test_admit_then_status(self, mini_server):
        service = WarehouseService(4, spec=mini_server)
        service.submit(lc_job("a", 0.4), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.run_until(5.0)
        status = service.status()
        assert status["admitted"] == 2
        assert status["jobs_running"] == 2
        assert status["lc_jobs"] == 1 and status["bg_jobs"] == 1
        assert service.has_job("a") and service.jobs_running == 2

    def test_duplicate_name_rejected(self, mini_server):
        service = WarehouseService(4, spec=mini_server)
        service.submit(bg_job("same"), at=1.0)
        service.submit(bg_job("same"), at=2.0)
        service.run_until(3.0)
        assert service.status()["rejections"] == 1
        rejects = [e for e in service.timeline if e.kind == "reject"]
        assert rejects[0].detail == "duplicate-name"

    def test_capacity_rejection(self, mini_server):
        service = WarehouseService(1, spec=mini_server, max_jobs_per_node=1)
        service.submit(bg_job("a"), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.run_until(3.0)
        assert service.placements() == {"a": 0}
        assert service.status()["rejections"] == 1

    def test_departure_frees_node_for_reuse(self, mini_server):
        service = WarehouseService(2, spec=mini_server, max_jobs_per_node=1)
        service.submit(bg_job("a"), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.depart("a", at=3.0)
        service.submit(bg_job("c"), at=4.0)
        service.run_until(5.0)
        # Node 0 was freed by a's departure and immediately reused.
        assert service.placements() == {"b": 1, "c": 0}
        assert service.status()["departures"] == 1
        assert service.cluster.machines_used() == 2

    def test_unknown_departure_is_recorded_not_fatal(self, mini_server):
        service = WarehouseService(2, spec=mini_server)
        service.depart("ghost", at=1.0)
        service.run_until(2.0)
        departs = [e for e in service.timeline if e.kind == "depart"]
        assert departs[0].detail == "unknown"


class TestMigrationAccounting:
    def _ramping_service(self, mini_server, cost_s=7.5):
        """One node holding a ramping LC pair that must split at t=50."""
        service = WarehouseService(
            3,
            spec=mini_server,
            recheck_period_s=30.0,
            migration=MigrationModel(cost_s=cost_s),
        )
        ramp = WarehouseJob.lc(
            make_lc("rampy", qos_latency_ms=6.0),
            LoadSchedule.steps([(0.0, 0.2), (50.0, 1.0)]),
            "ramp",
        )
        steady = lc_job("steady", 0.85, qos_latency_ms=6.0)
        service.submit(ramp, at=0.0)
        service.submit(steady, at=1.0)
        return service

    def test_failed_recheck_migrates_and_charges_cost(self, mini_server):
        service = self._ramping_service(mini_server)
        service.run_until(40.0)
        # Before the ramp: co-located, nothing moved.
        assert service.placements() == {"ramp": 0, "steady": 0}
        assert service.migration_cost_s == 0.0
        service.run_until(100.0)
        # The t=60 re-check saw (1.0, 0.85) fail and moved the lighter
        # LC job to a fresh machine, charging exactly one migration.
        assert service.placements() == {"ramp": 0, "steady": 1}
        records = service.migrations
        assert len(records) == 1
        record = records[0]
        assert record.succeeded
        assert (record.job, record.from_node, record.to_node) == ("steady", 0, 1)
        assert record.cost_s == pytest.approx(7.5)
        assert service.migration_cost_s == pytest.approx(7.5)
        status = service.status()
        assert status["migrations"] == 1
        assert status["dropped"] == 0
        kinds = [e.kind for e in service.timeline]
        assert "migrate" in kinds and "violation" not in kinds

    def test_unchanged_loads_skip_reverification(self, mini_server):
        service = self._ramping_service(mini_server)
        service.run_until(45.0)
        # The t=30 tick found the loads unchanged since admission and
        # verified nothing (detail says checked=0).
        recheck = [e for e in service.timeline if e.kind == "recheck"][0]
        assert recheck.detail == "checked=0 failed=0"
        assert recheck.verified == ()


class TestDeterminism:
    def test_synthesize_is_a_pure_function_of_config(self):
        config = ScenarioConfig(n_jobs=25, duration_s=300.0, seed=11)
        assert synthesize(config) == synthesize(config)
        other = ScenarioConfig(n_jobs=25, duration_s=300.0, seed=12)
        assert synthesize(other) != synthesize(config)

    def test_same_seed_runs_are_bit_identical(self):
        config = ScenarioConfig(n_jobs=60, duration_s=500.0, seed=5)
        runs = []
        for _ in range(2):
            service = WarehouseService(40, recheck_period_s=60.0, seed=5)
            load_into(service, synthesize(config))
            status = service.run_to_completion()
            runs.append(
                (service.timeline, service.placements(),
                 service.migrations, status)
            )
        assert runs[0] == runs[1]
        # The scenario actually exercised the service.
        timeline, placements, _, status = runs[0]
        assert status["arrivals"] == 60
        assert status["admitted"] > 0 and status["departures"] > 0
        assert len(timeline) >= 60

    def test_mutating_returned_snapshots_cannot_perturb_replay(self):
        """RPL903's contract, end to end: ``status()``/``placements()``
        hand out defensive copies, so trashing them mid-run leaves the
        rest of the replay bit-identical to an undisturbed one."""
        config = ScenarioConfig(n_jobs=60, duration_s=500.0, seed=5)

        def run(disturb):
            service = WarehouseService(40, recheck_period_s=60.0, seed=5)
            load_into(service, synthesize(config))
            if disturb:
                service.run_until(250.0)
                status = service.status()
                placements = service.placements()
                status.clear()
                status["jobs_running"] = -1
                placements.clear()
                placements["ghost"] = 99
            final = service.run_to_completion()
            return (
                service.timeline,
                service.placements(),
                service.migrations,
                final,
            )

        assert run(disturb=False) == run(disturb=True)


class TestIncrementalVerification:
    """Only displaced nodes are re-verified, observed via real counters."""

    def _verified_nodes(self, telemetry):
        nodes = set()
        for series, value in telemetry.snapshot().counters.items():
            name, labels = parse_series(series)
            if name == "cluster.verify.samples" and value > 0:
                nodes.add(int(labels["node"]))
        return nodes

    def test_only_displaced_nodes_probed(self, mini_server, tmp_path):
        clock = SimulatedClock()
        telemetry = Telemetry.enabled(clock=clock)
        with ObservationStore(tmp_path / "obs.jsonl") as store:
            service = WarehouseService(
                3,
                spec=mini_server,
                probe="clite",
                engine_config=FAST_ENGINE,
                max_jobs_per_node=2,
                clock=clock,
                telemetry=telemetry,
                store=store,
            )
            service.submit(lc_job("a", 0.3), at=1.0)  # empty node 0: no probe
            service.submit(lc_job("b", 0.3), at=2.0)  # probes node 0 only
            service.submit(lc_job("c", 0.3), at=3.0)  # node 0 full: node 1
            service.depart("a", at=4.0)  # re-verifies survivor on node 0
            service.run_until(5.0)
            assert service.placements() == {"b": 0, "c": 1}
            # Only node 0 ever gained a job alongside existing ones (or
            # lost one): it alone was BO-verified.  Empty-node admits
            # ("a" on 0, "c" on 1) are structural, and node 2 was never
            # sampled at all.
            assert self._verified_nodes(telemetry) == {0}
            per_event = {
                (e.kind, e.job): e.verified for e in service.timeline
            }
            assert per_event[("admit", "a")] == ()
            assert per_event[("admit", "b")] == (0,)
            assert per_event[("admit", "c")] == ()  # node 0 full: fresh node
            assert per_event[("depart", "a")] == (0,)
            cold_stats = store.stats()
            assert cold_stats.misses > 0

    def test_warm_store_makes_repeat_probes_cheap(self, mini_server, tmp_path):
        def run(store):
            service = WarehouseService(
                2,
                spec=mini_server,
                probe="clite",
                engine_config=FAST_ENGINE,
                store=store,
            )
            service.submit(lc_job("a", 0.3), at=1.0)
            service.submit(lc_job("b", 0.3), at=2.0)
            service.run_until(3.0)
            return service.timeline

        with ObservationStore(tmp_path / "obs.jsonl") as store:
            cold = run(store)
            misses_after_cold = store.stats().misses
            warm = run(store)
            stats = store.stats()
        assert cold == warm  # same decisions either way
        assert stats.hits > 0  # the second run reused stored truths
        assert stats.misses == misses_after_cold  # and added no new physics


class CountingService(WarehouseService):
    """Counts effective-load computations: the incremental recheck's
    one-computation-per-visited-node contract, observed directly."""

    loads_calls = 0

    def _loads_of(self, index, t):
        self.loads_calls += 1
        return super()._loads_of(index, t)


class TestIncrementalRecheck:
    """The recheck walks volatile/dirty candidates, not the fleet, and
    computes each visited node's load vector exactly once."""

    def test_static_fleet_goes_quiet_after_one_tick(self):
        service = CountingService(6, recheck_period_s=10.0, seed=3)
        for i, name in enumerate(("a", "b", "c")):
            service.submit(lc_job(name, 0.2), at=1.0 + i)
        service.run_until(9.5)
        lc_nodes = set(service.placements().values())
        before = service.loads_calls
        service.run_until(10.5)
        # First tick after admission: every admission-dirtied node costs
        # one load computation, matches its verified vector, and drops
        # off the candidate list.
        assert service.loads_calls - before == len(lc_nodes)
        rechecks = [e for e in service.timeline if e.kind == "recheck"]
        assert rechecks and rechecks[-1].detail == "checked=0 failed=0"
        before = service.loads_calls
        service.run_until(30.5)
        # Constant loads leave nothing volatile and nothing dirty: later
        # ticks compute no load vectors at all (the pre-index recheck
        # recomputed one per used node, every tick, forever).
        assert service.loads_calls == before
        assert len([e for e in service.timeline if e.kind == "recheck"]) >= 3

    def test_phased_node_is_checked_with_one_load_computation(self):
        schedule = LoadSchedule.steps([(0.0, 0.2), (15.0, 0.35)])
        service = CountingService(4, recheck_period_s=10.0, seed=3)
        service.submit(
            WarehouseJob.lc(make_lc("p"), schedule, "p"), at=1.0
        )
        service.run_until(9.5)
        assert "p" in service.placements()
        before = service.loads_calls
        service.run_until(10.5)
        # t=10: the load still reads 0.2, equal to the vector verified
        # at admission — one computation, then skip.
        assert service.loads_calls - before == 1
        before = service.loads_calls
        service.run_until(20.5)
        # t=20: the phase shifted to 0.35, so the node is re-verified —
        # and the rebalance reuses the vector already in hand instead of
        # recomputing it (the repo's own RPL1004 finding).
        assert service.loads_calls - before == 1
        rechecks = [e for e in service.timeline if e.kind == "recheck"]
        assert rechecks[-1].detail == "checked=1 failed=0"


class TestTimelineCursor:
    """timeline_len/timeline_since: rolling readers see every entry
    exactly once, including entries later aged out of the ring."""

    def test_rolling_cursor_collects_every_entry_once(self, monkeypatch):
        import repro.warehouse.service as service_mod

        monkeypatch.setattr(service_mod, "TIMELINE_LIMIT", 8)
        service = WarehouseService(20, recheck_period_s=50.0, seed=2)
        load_into(
            service, synthesize(ScenarioConfig(n_jobs=30, duration_s=300.0, seed=2))
        )
        collected = []
        cursor = service.timeline_len
        assert cursor == 0
        for t in range(10, 640, 10):
            service.run_until(float(t))
            fresh = service.timeline_since(cursor)
            # Slices are fine-grained enough that nothing ages out
            # between reads — the invariant rolling reports rely on.
            assert len(fresh) < 8
            collected.extend(fresh)
            cursor = service.timeline_len
        assert service.timeline_len == len(collected) > 8
        assert tuple(collected[-8:]) == service.timeline
        # A zero cursor clamps to whatever the ring still holds.
        assert service.timeline_since(0) == service.timeline
        assert service.timeline_since(cursor) == ()


class IndexFreeService(WarehouseService):
    """The pre-index reference implementation: full-fleet candidate
    scans for admission and recheck (the code repro-cost flagged),
    adapted only to the threaded-loads ``_rebalance_node`` signature.
    The density-bucket service must stay bit-identical to it."""

    def _probe_order(self, index):
        return (-self.cluster.nodes[index].n_jobs, index)

    def _find_target(self, job, t, exclude=frozenset()):
        from repro.warehouse.service import _request_at

        request = _request_at(job, t)
        verified = []
        candidates = {
            node_state.index
            for node_state in self.cluster.nodes
            if 0 < node_state.n_jobs < self.max_jobs_per_node
            and node_state.index not in exclude
            and node_state.can_host(request)
        }
        occupied = sorted(candidates, key=self._probe_order)
        for index in occupied[: self.max_probe_nodes]:
            node_state = self.cluster.nodes[index]
            tentative = self._refreshed(node_state, t).with_request(request)
            if not tentative.lc_requests:
                return node_state.index, tentative, tuple(verified)
            if self._check_node(tentative, verified):
                return node_state.index, tentative, tuple(verified)
        for node_state in self.cluster.nodes:
            if (
                node_state.n_jobs == 0
                and node_state.index not in exclude
                and node_state.can_host(request)
            ):
                return (
                    node_state.index,
                    node_state.with_request(request),
                    tuple(verified),
                )
        return None, None, tuple(verified)

    def _on_recheck(self, t, seq):
        from repro.warehouse.service import TimelineEntry

        self._counts["rechecks"] += 1
        self.telemetry.metrics.counter("warehouse.rechecks").add()
        checked = 0
        failed = 0
        verified_all = []
        for node_state in self.cluster.used_nodes():
            if not node_state.lc_requests:
                continue
            loads = self._loads_of(node_state.index, t)
            if self._last_verified.get(node_state.index) == loads:
                continue
            checked += 1
            verified = self._rebalance_node(node_state.index, t, seq, loads)
            verified_all.extend(verified)
            if self._last_verified.get(node_state.index) != loads:
                failed += 1
        if failed:
            self._counts["recheck_failures"] += failed
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="recheck",
                detail=f"checked={checked} failed={failed}",
                verified=tuple(verified_all),
            )
        )


class TestIndexEquivalence:
    """The density-bucket/dirty-set service replays bit-identically to
    the scan-everything reference across full scenarios."""

    @pytest.mark.parametrize("seed", [5, 11])
    def test_indexed_service_matches_full_scan_reference(self, seed):
        events = synthesize(
            ScenarioConfig(n_jobs=60, duration_s=500.0, seed=seed)
        )
        runs = []
        for cls in (WarehouseService, IndexFreeService):
            service = cls(40, recheck_period_s=60.0, seed=seed)
            load_into(service, events)
            status = service.run_to_completion()
            runs.append(
                (
                    service.timeline,
                    service.placements(),
                    service.migrations,
                    status,
                )
            )
        assert runs[0] == runs[1]
        status = runs[0][3]
        assert status["admitted"] > 0 and status["rechecks"] > 0
