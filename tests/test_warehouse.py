"""The warehouse service: event core, admission, migration, determinism."""

from __future__ import annotations

import pytest

from conftest import make_bg, make_lc
from repro.core import CLITEConfig
from repro.telemetry import Telemetry
from repro.telemetry.clock import SimulatedClock
from repro.telemetry.serve import parse_series
from repro.server import ObservationStore
from repro.warehouse import (
    Arrival,
    Departure,
    EventLoop,
    EventQueue,
    MigrationModel,
    QuickProbe,
    Recheck,
    ScenarioConfig,
    WarehouseJob,
    WarehouseService,
    load_into,
    synthesize,
)
from repro.workloads import LoadSchedule

#: Small engine budgets for full-CLITE probes in tests.
FAST_ENGINE = CLITEConfig(
    max_iterations=10,
    post_qos_iterations=3,
    refine_budget=5,
    confirm_top=1,
    n_restarts=3,
)


def lc_job(name, load, qos_latency_ms=10.0):
    return WarehouseJob.lc(
        make_lc(name, qos_latency_ms=qos_latency_ms), load, name
    )


def bg_job(name):
    return WarehouseJob.bg(make_bg(name), name)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, Departure("b"))
        queue.push(1.0, Departure("a"))
        queue.push(3.0, Departure("c"))
        times = [queue.pop()[0] for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_pop_in_submission_order(self):
        queue = EventQueue()
        first = queue.push(2.0, Departure("first"))
        second = queue.push(2.0, Departure("second"))
        assert second == first + 1
        assert queue.pop()[2] == Departure("first")
        assert queue.pop()[2] == Departure("second")

    def test_peek_and_last_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert queue.last_time() is None
        queue.push(4.0, Recheck())
        queue.push(9.0, Recheck())
        assert queue.peek_time() == 4.0
        assert queue.last_time() == 9.0
        assert len(queue) == 2 and bool(queue)


class TestEventLoop:
    def test_rejects_scheduling_in_the_past(self):
        loop = EventLoop()
        loop.clock.tick(10.0)
        with pytest.raises(ValueError, match="cannot schedule"):
            loop.schedule(5.0, Recheck())

    def test_rejects_running_backwards(self):
        loop = EventLoop()
        loop.clock.tick(10.0)
        with pytest.raises(ValueError, match="cannot run"):
            loop.run_until(5.0, lambda *a: None)

    def test_clock_lands_exactly_on_target(self):
        loop = EventLoop()
        loop.schedule(3.0, Recheck())
        loop.run_until(7.5, lambda *a: None)
        assert loop.now_s == 7.5

    def test_recheck_ticks_interleave_after_same_time_events(self):
        loop = EventLoop(recheck_period_s=10.0)
        loop.schedule(10.0, Departure("at-tick-time"))
        loop.schedule(25.0, Departure("later"))
        seen = []
        loop.run_until(30.0, lambda t, seq, p: seen.append((t, type(p).__name__)))
        assert seen == [
            (10.0, "Departure"),  # heap events beat the tick at t=10
            (10.0, "Recheck"),
            (20.0, "Recheck"),
            (25.0, "Departure"),
            (30.0, "Recheck"),
        ]

    def test_clock_advances_monotonically_through_handlers(self):
        loop = EventLoop()
        loop.schedule(2.0, Recheck())
        loop.schedule(6.0, Recheck())
        times = []
        loop.run_until(8.0, lambda t, seq, p: times.append(loop.now_s))
        assert times == [2.0, 6.0]


class TestWarehouseJob:
    def test_lc_requires_schedule(self):
        with pytest.raises(ValueError, match="needs a load schedule"):
            WarehouseJob(make_lc("a"), "a")

    def test_bg_refuses_schedule(self):
        with pytest.raises(ValueError, match="does not take"):
            WarehouseJob(make_bg("b"), "b", LoadSchedule.constant(0.5))

    def test_load_clamped_into_probe_range(self):
        job = WarehouseJob.lc(
            make_lc("a"), LoadSchedule.steps([(0.0, 0.0), (10.0, 1.4)]), "a"
        )
        assert job.load_at(0.0) == pytest.approx(0.01)
        assert job.load_at(10.0) == pytest.approx(1.0)
        assert bg_job("b").load_at(5.0) is None

    def test_float_becomes_constant_schedule(self):
        job = lc_job("a", 0.4)
        assert job.load_at(0.0) == job.load_at(1e6) == pytest.approx(0.4)


class TestMigrationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationModel(cost_s=-1.0)
        with pytest.raises(ValueError):
            MigrationModel(max_evictions_per_check=0)

    def test_victim_prefers_bg_then_lightest_lc(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        lc_heavy = JobRequest(make_lc("heavy"), 0.9, name="heavy")
        lc_light = JobRequest(make_lc("light"), 0.2, name="light")
        bg = JobRequest(make_bg("noise"), name="noise")
        model = MigrationModel()
        node = ClusterNode(0, mini_server, [lc_heavy, lc_light, bg])
        assert model.select_victim(node, 0.0).request_name == "noise"
        node = ClusterNode(0, mini_server, [lc_heavy, lc_light])
        assert model.select_victim(node, 0.0).request_name == "light"
        node = ClusterNode(0, mini_server, [lc_heavy])
        assert model.select_victim(node, 0.0) is None


class TestQuickProbe:
    def test_bg_only_node_always_passes(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        node = ClusterNode(0, mini_server, [JobRequest(make_bg("b"), name="b")])
        assert QuickProbe().check(node, seed=0)

    def test_infeasible_pair_rejected_feasible_singles_pass(self, mini_server):
        from repro.cluster.state import ClusterNode, JobRequest

        probe = QuickProbe()

        def node_of(loads):
            requests = [
                JobRequest(
                    make_lc(f"w{i}", qos_latency_ms=6.0), load, name=f"w{i}"
                )
                for i, load in enumerate(loads)
            ]
            return ClusterNode(0, mini_server, requests)

        assert probe.check(node_of([1.0]), seed=0)
        assert probe.check(node_of([0.85]), seed=0)
        assert not probe.check(node_of([1.0, 0.85]), seed=0)


class TestServiceBasics:
    def test_admit_then_status(self, mini_server):
        service = WarehouseService(4, spec=mini_server)
        service.submit(lc_job("a", 0.4), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.run_until(5.0)
        status = service.status()
        assert status["admitted"] == 2
        assert status["jobs_running"] == 2
        assert status["lc_jobs"] == 1 and status["bg_jobs"] == 1
        assert service.has_job("a") and service.jobs_running == 2

    def test_duplicate_name_rejected(self, mini_server):
        service = WarehouseService(4, spec=mini_server)
        service.submit(bg_job("same"), at=1.0)
        service.submit(bg_job("same"), at=2.0)
        service.run_until(3.0)
        assert service.status()["rejections"] == 1
        rejects = [e for e in service.timeline if e.kind == "reject"]
        assert rejects[0].detail == "duplicate-name"

    def test_capacity_rejection(self, mini_server):
        service = WarehouseService(1, spec=mini_server, max_jobs_per_node=1)
        service.submit(bg_job("a"), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.run_until(3.0)
        assert service.placements() == {"a": 0}
        assert service.status()["rejections"] == 1

    def test_departure_frees_node_for_reuse(self, mini_server):
        service = WarehouseService(2, spec=mini_server, max_jobs_per_node=1)
        service.submit(bg_job("a"), at=1.0)
        service.submit(bg_job("b"), at=2.0)
        service.depart("a", at=3.0)
        service.submit(bg_job("c"), at=4.0)
        service.run_until(5.0)
        # Node 0 was freed by a's departure and immediately reused.
        assert service.placements() == {"b": 1, "c": 0}
        assert service.status()["departures"] == 1
        assert service.cluster.machines_used() == 2

    def test_unknown_departure_is_recorded_not_fatal(self, mini_server):
        service = WarehouseService(2, spec=mini_server)
        service.depart("ghost", at=1.0)
        service.run_until(2.0)
        departs = [e for e in service.timeline if e.kind == "depart"]
        assert departs[0].detail == "unknown"


class TestMigrationAccounting:
    def _ramping_service(self, mini_server, cost_s=7.5):
        """One node holding a ramping LC pair that must split at t=50."""
        service = WarehouseService(
            3,
            spec=mini_server,
            recheck_period_s=30.0,
            migration=MigrationModel(cost_s=cost_s),
        )
        ramp = WarehouseJob.lc(
            make_lc("rampy", qos_latency_ms=6.0),
            LoadSchedule.steps([(0.0, 0.2), (50.0, 1.0)]),
            "ramp",
        )
        steady = lc_job("steady", 0.85, qos_latency_ms=6.0)
        service.submit(ramp, at=0.0)
        service.submit(steady, at=1.0)
        return service

    def test_failed_recheck_migrates_and_charges_cost(self, mini_server):
        service = self._ramping_service(mini_server)
        service.run_until(40.0)
        # Before the ramp: co-located, nothing moved.
        assert service.placements() == {"ramp": 0, "steady": 0}
        assert service.migration_cost_s == 0.0
        service.run_until(100.0)
        # The t=60 re-check saw (1.0, 0.85) fail and moved the lighter
        # LC job to a fresh machine, charging exactly one migration.
        assert service.placements() == {"ramp": 0, "steady": 1}
        records = service.migrations
        assert len(records) == 1
        record = records[0]
        assert record.succeeded
        assert (record.job, record.from_node, record.to_node) == ("steady", 0, 1)
        assert record.cost_s == pytest.approx(7.5)
        assert service.migration_cost_s == pytest.approx(7.5)
        status = service.status()
        assert status["migrations"] == 1
        assert status["dropped"] == 0
        kinds = [e.kind for e in service.timeline]
        assert "migrate" in kinds and "violation" not in kinds

    def test_unchanged_loads_skip_reverification(self, mini_server):
        service = self._ramping_service(mini_server)
        service.run_until(45.0)
        # The t=30 tick found the loads unchanged since admission and
        # verified nothing (detail says checked=0).
        recheck = [e for e in service.timeline if e.kind == "recheck"][0]
        assert recheck.detail == "checked=0 failed=0"
        assert recheck.verified == ()


class TestDeterminism:
    def test_synthesize_is_a_pure_function_of_config(self):
        config = ScenarioConfig(n_jobs=25, duration_s=300.0, seed=11)
        assert synthesize(config) == synthesize(config)
        other = ScenarioConfig(n_jobs=25, duration_s=300.0, seed=12)
        assert synthesize(other) != synthesize(config)

    def test_same_seed_runs_are_bit_identical(self):
        config = ScenarioConfig(n_jobs=60, duration_s=500.0, seed=5)
        runs = []
        for _ in range(2):
            service = WarehouseService(40, recheck_period_s=60.0, seed=5)
            load_into(service, synthesize(config))
            status = service.run_to_completion()
            runs.append(
                (service.timeline, service.placements(),
                 service.migrations, status)
            )
        assert runs[0] == runs[1]
        # The scenario actually exercised the service.
        timeline, placements, _, status = runs[0]
        assert status["arrivals"] == 60
        assert status["admitted"] > 0 and status["departures"] > 0
        assert len(timeline) >= 60

    def test_mutating_returned_snapshots_cannot_perturb_replay(self):
        """RPL903's contract, end to end: ``status()``/``placements()``
        hand out defensive copies, so trashing them mid-run leaves the
        rest of the replay bit-identical to an undisturbed one."""
        config = ScenarioConfig(n_jobs=60, duration_s=500.0, seed=5)

        def run(disturb):
            service = WarehouseService(40, recheck_period_s=60.0, seed=5)
            load_into(service, synthesize(config))
            if disturb:
                service.run_until(250.0)
                status = service.status()
                placements = service.placements()
                status.clear()
                status["jobs_running"] = -1
                placements.clear()
                placements["ghost"] = 99
            final = service.run_to_completion()
            return (
                service.timeline,
                service.placements(),
                service.migrations,
                final,
            )

        assert run(disturb=False) == run(disturb=True)


class TestIncrementalVerification:
    """Only displaced nodes are re-verified, observed via real counters."""

    def _verified_nodes(self, telemetry):
        nodes = set()
        for series, value in telemetry.snapshot().counters.items():
            name, labels = parse_series(series)
            if name == "cluster.verify.samples" and value > 0:
                nodes.add(int(labels["node"]))
        return nodes

    def test_only_displaced_nodes_probed(self, mini_server, tmp_path):
        clock = SimulatedClock()
        telemetry = Telemetry.enabled(clock=clock)
        with ObservationStore(tmp_path / "obs.jsonl") as store:
            service = WarehouseService(
                3,
                spec=mini_server,
                probe="clite",
                engine_config=FAST_ENGINE,
                max_jobs_per_node=2,
                clock=clock,
                telemetry=telemetry,
                store=store,
            )
            service.submit(lc_job("a", 0.3), at=1.0)  # empty node 0: no probe
            service.submit(lc_job("b", 0.3), at=2.0)  # probes node 0 only
            service.submit(lc_job("c", 0.3), at=3.0)  # node 0 full: node 1
            service.depart("a", at=4.0)  # re-verifies survivor on node 0
            service.run_until(5.0)
            assert service.placements() == {"b": 0, "c": 1}
            # Only node 0 ever gained a job alongside existing ones (or
            # lost one): it alone was BO-verified.  Empty-node admits
            # ("a" on 0, "c" on 1) are structural, and node 2 was never
            # sampled at all.
            assert self._verified_nodes(telemetry) == {0}
            per_event = {
                (e.kind, e.job): e.verified for e in service.timeline
            }
            assert per_event[("admit", "a")] == ()
            assert per_event[("admit", "b")] == (0,)
            assert per_event[("admit", "c")] == ()  # node 0 full: fresh node
            assert per_event[("depart", "a")] == (0,)
            cold_stats = store.stats()
            assert cold_stats.misses > 0

    def test_warm_store_makes_repeat_probes_cheap(self, mini_server, tmp_path):
        def run(store):
            service = WarehouseService(
                2,
                spec=mini_server,
                probe="clite",
                engine_config=FAST_ENGINE,
                store=store,
            )
            service.submit(lc_job("a", 0.3), at=1.0)
            service.submit(lc_job("b", 0.3), at=2.0)
            service.run_until(3.0)
            return service.timeline

        with ObservationStore(tmp_path / "obs.jsonl") as store:
            cold = run(store)
            misses_after_cold = store.stats().misses
            warm = run(store)
            stats = store.stats()
        assert cold == warm  # same decisions either way
        assert stats.hits > 0  # the second run reused stored truths
        assert stats.misses == misses_after_cold  # and added no new physics
