"""Unit tests for resource and server specifications."""

import pytest

from repro.resources import (
    CORES,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    Resource,
    ServerSpec,
    default_server,
    full_server,
    small_server,
)


class TestResource:
    def test_valid_resource(self):
        r = Resource(CORES, 10)
        assert r.name == CORES
        assert r.units == 10

    def test_zero_units_rejected(self):
        with pytest.raises(ValueError, match=">= 1 unit"):
            Resource(CORES, 0)

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            Resource(CORES, -3)

    def test_max_units_per_job(self):
        r = Resource(LLC_WAYS, 11)
        assert r.max_units_per_job(1) == 11
        assert r.max_units_per_job(4) == 8

    def test_max_units_per_job_all_floor(self):
        r = Resource(CORES, 4)
        assert r.max_units_per_job(4) == 1

    def test_frozen(self):
        r = Resource(CORES, 10)
        with pytest.raises(AttributeError):
            r.units = 5


class TestServerSpec:
    def test_default_server_matches_table2(self):
        server = default_server()
        assert server.resource(CORES).units == 10
        assert server.resource(LLC_WAYS).units == 11
        assert server.resource(MEMORY_BANDWIDTH).units == 10
        assert server.frequency_ghz == 2.2
        assert server.memory_gb == 46

    def test_default_server_isolation_tools(self):
        server = default_server()
        assert server.resource(CORES).isolation_tool == "taskset"
        assert server.resource(LLC_WAYS).isolation_tool == "Intel CAT"
        assert server.resource(MEMORY_BANDWIDTH).isolation_tool == "Intel MBA"

    def test_full_server_has_all_six_resources(self):
        assert full_server().n_resources == 6

    def test_resource_names_order(self):
        server = default_server()
        assert server.resource_names == (CORES, LLC_WAYS, MEMORY_BANDWIDTH)

    def test_unknown_resource_raises(self):
        with pytest.raises(KeyError, match="no resource named"):
            default_server().resource("gpu")

    def test_empty_resources_rejected(self):
        with pytest.raises(ValueError, match="at least one resource"):
            ServerSpec(resources=())

    def test_duplicate_resource_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServerSpec(resources=(Resource(CORES, 4), Resource(CORES, 8)))

    def test_max_jobs_is_min_units(self):
        server = ServerSpec(
            resources=(Resource(CORES, 4), Resource(LLC_WAYS, 11))
        )
        assert server.max_jobs() == 4

    def test_small_server_sizes(self):
        server = small_server(units=5, n_resources=3)
        assert server.n_resources == 3
        assert all(r.units == 5 for r in server.resources)

    def test_small_server_bad_n_resources(self):
        with pytest.raises(ValueError):
            small_server(n_resources=0)
        with pytest.raises(ValueError):
            small_server(n_resources=4)
