"""Property-based tests for the acquisition optimizer's geometry helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AcquisitionOptimizer, DropoutDecision
from repro.resources import ConfigurationSpace, Resource, ServerSpec


@st.composite
def space_and_config(draw):
    n_res = draw(st.integers(2, 3))
    n_jobs = draw(st.integers(2, 4))
    units = [draw(st.integers(n_jobs + 1, n_jobs + 7)) for _ in range(n_res)]
    server = ServerSpec(
        resources=tuple(Resource(f"r{i}", u) for i, u in enumerate(units))
    )
    space = ConfigurationSpace(server, n_jobs)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return space, space.random(rng), rng


@given(data=space_and_config(), cap_extra=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_repair_caps_yields_valid_capped_configs(data, cap_extra):
    """Whatever the caps, the repaired config is valid; and when the
    caps leave enough headroom, they are respected exactly."""
    space, config, rng = data
    opt = AcquisitionOptimizer(space, rng=rng)
    n_jobs, n_res = space.n_jobs, space.n_resources
    caps = np.empty((n_jobs, n_res))
    for r, resource in enumerate(space.spec.resources):
        # Base cap ~ fair share + slack; always jointly satisfiable.
        fair = resource.units // n_jobs
        caps[:, r] = max(fair, 1) + cap_extra
        while caps[:, r].sum() < resource.units:
            caps[np.argmin(caps[:, r]), r] += 1
    repaired = opt._repair_caps(config, caps, None)
    space.validate(repaired)
    assert (repaired.as_array() <= caps + 1e-9).all()


@given(data=space_and_config())
@settings(max_examples=60, deadline=None)
def test_round_with_pin_preserves_pinned_row(data):
    space, config, rng = data
    opt = AcquisitionOptimizer(space, rng=rng)
    pin_job = int(rng.integers(space.n_jobs))
    pin_row = config.job_allocation(pin_job)
    dropout = DropoutDecision(job_index=pin_job, allocation=pin_row)
    z = rng.random(space.n_dims)
    rounded = opt._round(z, dropout)
    space.validate(rounded)
    assert rounded.job_allocation(pin_job) == pin_row


@given(data=space_and_config())
@settings(max_examples=40, deadline=None)
def test_project_feasible_satisfies_column_sums(data):
    space, config, rng = data
    opt = AcquisitionOptimizer(space, rng=rng)
    z = rng.random(space.n_dims)
    projected = opt._project_feasible(z, None)
    cols = projected.reshape(space.n_jobs, space.n_resources)
    targets = opt._column_targets()
    assert np.allclose(cols.sum(axis=0), targets, atol=1e-9)
    assert (projected >= -1e-12).all() and (projected <= 1 + 1e-12).all()


@given(data=space_and_config())
@settings(max_examples=40, deadline=None)
def test_round_unpinned_matches_space_rounding(data):
    """Without a pin, the optimizer's rounding is exactly the space's."""
    space, config, rng = data
    opt = AcquisitionOptimizer(space, rng=rng)
    z = np.clip(rng.random(space.n_dims), 0.0, 1.0)
    assert opt._round(z, None) == space.from_unit_cube(z)
