"""Unit tests for acquisition functions (Eq. 2 and ablation variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
)


class TestExpectedImprovement:
    def test_zero_std_gives_zero(self):
        """Eq. 2's second branch: E(x) = 0 when sigma(x) = 0."""
        ei = ExpectedImprovement(zeta=0.01)
        values = ei(np.array([5.0]), np.array([0.0]), best=1.0)
        assert values[0] == 0.0

    def test_higher_mean_higher_ei(self):
        ei = ExpectedImprovement()
        values = ei(np.array([1.0, 2.0]), np.array([0.5, 0.5]), best=1.0)
        assert values[1] > values[0]

    def test_higher_std_higher_ei_below_best(self):
        ei = ExpectedImprovement()
        values = ei(np.array([0.5, 0.5]), np.array([0.1, 1.0]), best=1.0)
        assert values[1] > values[0]

    def test_far_below_best_nearly_zero(self):
        ei = ExpectedImprovement()
        values = ei(np.array([-10.0]), np.array([0.1]), best=1.0)
        assert values[0] == pytest.approx(0.0, abs=1e-6)

    def test_closed_form_at_zero_improvement(self):
        """mu = best + zeta gives EI = sigma * phi(0) = sigma / sqrt(2*pi)."""
        ei = ExpectedImprovement(zeta=0.01)
        sigma = 0.3
        values = ei(np.array([1.01]), np.array([sigma]), best=1.0)
        assert values[0] == pytest.approx(sigma / np.sqrt(2 * np.pi))

    def test_zeta_discourages_exploitation(self):
        mean = np.array([1.05])
        std = np.array([0.01])
        eager = ExpectedImprovement(zeta=0.0)(mean, std, best=1.0)
        cautious = ExpectedImprovement(zeta=0.1)(mean, std, best=1.0)
        assert cautious[0] < eager[0]

    def test_negative_zeta_rejected(self):
        with pytest.raises(ValueError):
            ExpectedImprovement(zeta=-0.01)

    def test_nonnegative_everywhere(self):
        ei = ExpectedImprovement()
        rng = np.random.default_rng(0)
        values = ei(rng.normal(0, 2, 100), rng.random(100), best=0.5)
        assert (values >= 0).all()


class TestProbabilityOfImprovement:
    def test_bounded_by_one(self):
        pi = ProbabilityOfImprovement()
        rng = np.random.default_rng(1)
        values = pi(rng.normal(0, 2, 100), rng.random(100), best=0.0)
        assert ((0 <= values) & (values <= 1)).all()

    def test_certain_improvement_with_zero_std(self):
        pi = ProbabilityOfImprovement(zeta=0.01)
        values = pi(np.array([5.0, -5.0]), np.array([0.0, 0.0]), best=1.0)
        assert values[0] == 1.0
        assert values[1] == 0.0

    def test_half_at_threshold(self):
        pi = ProbabilityOfImprovement(zeta=0.0)
        values = pi(np.array([1.0]), np.array([0.5]), best=1.0)
        assert values[0] == pytest.approx(0.5)


class TestUpperConfidenceBound:
    def test_formula(self):
        ucb = UpperConfidenceBound(kappa=2.0)
        values = ucb(np.array([1.0]), np.array([0.5]), best=99.0)
        assert values[0] == pytest.approx(2.0)

    def test_kappa_zero_is_posterior_mean(self):
        ucb = UpperConfidenceBound(kappa=0.0)
        mean = np.array([0.3, 0.7])
        assert np.allclose(ucb(mean, np.array([1.0, 1.0]), best=0.0), mean)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            UpperConfidenceBound(kappa=-1.0)


@given(
    mean=st.floats(-5, 5, allow_nan=False),
    std=st.floats(0.0, 3.0, allow_nan=False),
    best=st.floats(-5, 5, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_ei_nonnegative_property(mean, std, best):
    ei = ExpectedImprovement()
    value = ei(np.array([mean]), np.array([std]), best)[0]
    assert value >= 0.0
    assert np.isfinite(value)


@given(
    mean=st.floats(-5, 5, allow_nan=False),
    best=st.floats(-5, 5, allow_nan=False),
    std_lo=st.floats(0.01, 1.0, allow_nan=False),
    bump=st.floats(0.01, 2.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_ei_monotone_in_std(mean, best, std_lo, bump):
    """For fixed mean, more uncertainty never lowers EI."""
    ei = ExpectedImprovement()
    lo = ei(np.array([mean]), np.array([std_lo]), best)[0]
    hi = ei(np.array([mean]), np.array([std_lo + bump]), best)[0]
    assert hi >= lo - 1e-12
