"""Scale stress: larger job mixes and bigger spaces end to end.

The paper's Fig. 15(a) sweeps up to 5 co-located jobs; these tests push
the engine and substrate to comparable scale and check nothing
structural gives out (validity, budgets, QoS semantics).
"""

import pytest

from repro.core import CLITEConfig, CLITEEngine
from repro.experiments import MixSpec
from repro.resources import ConfigurationSpace, default_server
from repro.schedulers import PartiesPolicy
from repro.server import NodeBudget


FIVE_JOB_MIX = MixSpec.of(
    lc=[("img-dnn", 0.2), ("memcached", 0.2), ("masstree", 0.2)],
    bg=["streamcluster", "blackscholes"],
)

SIX_JOB_MIX = MixSpec.of(
    lc=[("img-dnn", 0.2), ("memcached", 0.2), ("xapian", 0.2)],
    bg=["streamcluster", "blackscholes", "swaptions"],
)

FAST = CLITEConfig(
    seed=0,
    max_iterations=20,
    post_qos_iterations=6,
    refine_budget=8,
    confirm_top=2,
    n_restarts=4,
)


class TestFiveJobs:
    def test_space_size_is_large(self):
        space = ConfigurationSpace(default_server(), 5)
        assert space.size() > 10**6

    def test_clite_handles_five_jobs(self):
        node = FIVE_JOB_MIX.build_node(seed=0)
        result = CLITEEngine(node, FAST).optimize()
        assert result.best_config is not None
        node.space.validate(result.best_config)
        truth = node.true_performance(result.best_config)
        assert truth.all_qos_met

    def test_parties_handles_five_jobs(self):
        node = FIVE_JOB_MIX.build_node(seed=0)
        result = PartiesPolicy().partition(node, NodeBudget(60))
        assert result.best_config is not None
        node.space.validate(result.best_config)


class TestSixJobs:
    def test_clite_handles_six_jobs(self):
        node = SIX_JOB_MIX.build_node(seed=1)
        result = CLITEEngine(node, FAST).optimize()
        assert result.best_config is not None
        node.space.validate(result.best_config)
        truth = node.true_performance(result.best_config)
        assert truth.all_qos_met
        # Both BG jobs actually get something beyond the floor.
        bg_perfs = [j.throughput_norm for j in truth.bg_jobs]
        assert all(p > 0.02 for p in bg_perfs)

    def test_bootstrap_size_scales_with_jobs(self):
        node = SIX_JOB_MIX.build_node(seed=1)
        result = CLITEEngine(node, FAST).optimize()
        bootstrap = [r for r in result.samples if r.phase == "bootstrap"]
        assert len(bootstrap) == 7  # n_jobs + 1


class TestTenJobFloor:
    def test_max_jobs_cap_enforced(self):
        """The Table 2 box fits at most 10 one-unit jobs; 11 must fail."""
        server = default_server()
        with pytest.raises(ValueError, match="cannot each get"):
            ConfigurationSpace(server, 11)

    def test_ten_jobs_single_configuration(self):
        server = default_server()
        space = ConfigurationSpace(server, 10)
        # Cores have exactly 10 units: every job holds 1, no freedom.
        equal = space.equal_partition()
        assert equal.resource_column(0) == (1,) * 10
