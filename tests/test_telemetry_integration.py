"""Telemetry woven through engine, node, monitor, cluster, and dynamic
runs: snapshots on results, counters that agree with ground truth, and
thread-pool safety under ``verify_workers``."""

from __future__ import annotations

import pytest

from conftest import make_bg, make_lc, make_node
from repro.cluster import (
    CLITEPlacement,
    Cluster,
    DedicatedPlacement,
    JobRequest,
    verify_nodes,
)
from repro.cluster.state import ClusterNode
from repro.core import CLITEConfig, CLITEEngine
from repro.experiments import MixSpec, run_dynamic, run_trial
from repro.server import Job, Node, NodeBudget, PerformanceCounters, QoSMonitor
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workloads import LoadSchedule
from test_core_termination_engine import small_engine_config

FAST_ENGINE = CLITEConfig(
    max_iterations=10,
    post_qos_iterations=3,
    refine_budget=5,
    confirm_top=1,
    n_restarts=3,
)


def run_engine(mini_server, telemetry=None, seed=3):
    node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, seed=seed)
    config = small_engine_config(seed=seed, telemetry=telemetry)
    return CLITEEngine(node, config).optimize()


# ----------------------------------------------------------------------
# Engine + node
# ----------------------------------------------------------------------
class TestEngineTelemetry:
    def test_disabled_by_default_result_carries_no_snapshot(self, mini_server):
        assert run_engine(mini_server).telemetry is None

    def test_enabled_result_carries_phase_breakdown(self, mini_server):
        tel = Telemetry.enabled()
        result = run_engine(mini_server, telemetry=tel)
        snap = result.telemetry
        assert snap is not None
        assert snap.phase_counts["engine.optimize"] == 1
        assert snap.phase_counts["engine.bootstrap"] == 1
        assert snap.phase_counts["optimizer.propose"] >= 1
        assert snap.phase_counts["node.observe"] == result.samples_taken
        assert snap.dropped == 0
        # children sum within the root span's envelope
        assert snap.phase_seconds["engine.bootstrap"] <= (
            snap.phase_seconds["engine.optimize"] + 1e-9
        )

    def test_engine_counters_match_result(self, mini_server):
        tel = Telemetry.enabled()
        result = run_engine(mini_server, telemetry=tel)
        assert tel.metrics.counter_value("engine.runs") == 1.0
        assert (
            tel.metrics.counter_value("engine.samples")
            == result.samples_taken
        )
        assert tel.metrics.counter_value("node.observe.windows") == float(
            result.samples_taken
        )

    def test_cache_counters_match_registry(self, mini_server):
        """CLITEResult's cache accounting and the MetricRegistry count
        the same cache, so they must agree exactly."""
        tel = Telemetry.enabled()
        result = run_engine(mini_server, telemetry=tel)
        assert tel.metrics.counter_value("node.cache.hits") == float(
            result.cache_hits
        )
        assert tel.metrics.counter_value("node.cache.misses") == float(
            result.cache_misses
        )

    def test_snapshot_scoped_to_one_run_on_shared_context(self, mini_server):
        tel = Telemetry.enabled()
        first = run_engine(mini_server, telemetry=tel, seed=3)
        second = run_engine(mini_server, telemetry=tel, seed=4)
        # per-run span windows do not bleed into each other ...
        assert first.telemetry.phase_counts["engine.optimize"] == 1
        assert second.telemetry.phase_counts["engine.optimize"] == 1
        # ... while registry counters accumulate across the session
        assert second.telemetry.counters["engine.runs"] == 2.0

    def test_run_trial_threads_telemetry(self):
        from repro.schedulers import CLITEPolicy

        mix = MixSpec.of(lc=[("img-dnn", 0.3)], bg=["streamcluster"])
        tel = Telemetry.enabled()
        trial = run_trial(
            mix,
            CLITEPolicy(config=FAST_ENGINE),
            seed=0,
            budget=NodeBudget(25),
            telemetry=tel,
        )
        assert trial.result.telemetry is not None
        assert tel.metrics.counter_value("engine.runs") == 1.0


# ----------------------------------------------------------------------
# Monitor
# ----------------------------------------------------------------------
class TestMonitorTelemetry:
    def _node(self, mini_server, schedule):
        jobs = [Job(make_lc("lc0"), schedule), Job.bg(make_bg("bg0"))]
        return Node(
            mini_server, jobs, counters=PerformanceCounters(seed=0)
        )

    def test_checks_counted_and_spanned(self, mini_server):
        tel = Telemetry.enabled()
        node = self._node(mini_server, LoadSchedule.constant(0.3))
        monitor = QoSMonitor(node, telemetry=tel)
        config = node.space.equal_partition()
        for _ in range(3):
            monitor.check(config)
        assert tel.metrics.counter_value("monitor.checks") == 3.0
        assert tel.snapshot().phase_counts["monitor.check"] == 3

    def test_trigger_emits_event_and_labelled_counter(self, mini_server):
        tel = Telemetry.enabled()
        schedule = LoadSchedule.steps([(0, 0.2), (6, 0.5)])
        node = self._node(mini_server, schedule)
        monitor = QoSMonitor(
            node, load_change_threshold=0.05, telemetry=tel
        )
        config = node.space.equal_partition()
        reports = [monitor.check(config) for _ in range(5)]
        reinvocations = sum(1 for r in reports if r.reinvoke)
        assert reinvocations >= 1
        triggered = [
            e for e in tel.tracer.events() if e.name == "monitor.trigger"
        ]
        assert len(triggered) == reinvocations
        total = sum(
            data["value"]
            for series, data in tel.metrics.snapshot().items()
            if series.startswith("monitor.triggers")
        )
        assert total == reinvocations


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------
def cluster_states(mini_server, n=3):
    states = []
    for i in range(n):
        states.append(
            ClusterNode(i, mini_server)
            .with_request(JobRequest(make_lc(f"svc-{i}"), 0.3, name=f"svc-{i}"))
            .with_request(JobRequest(make_bg(f"batch-{i}"), name=f"batch-{i}"))
        )
    return states


class TestClusterTelemetry:
    def test_parallel_counters_match_serial(self, mini_server):
        """The verify_workers pool shares one registry; fan-out must not
        lose or duplicate a single increment relative to a serial run."""
        states = cluster_states(mini_server)
        snapshots = []
        for workers in (1, 3):
            tel = Telemetry.enabled()
            verify_nodes(
                states, FAST_ENGINE, seed=0, max_workers=workers,
                telemetry=tel,
            )
            snapshots.append(tel.metrics.snapshot())
        assert snapshots[0] == snapshots[1]
        assert any(
            series.startswith("cluster.verify.samples")
            for series in snapshots[0]
        )

    def test_verify_span_per_node(self, mini_server):
        states = cluster_states(mini_server)
        tel = Telemetry.enabled()
        verify_nodes(states, FAST_ENGINE, seed=0, telemetry=tel)
        snap = tel.snapshot()
        assert snap.phase_counts["cluster.verify_node"] == len(states)

    def test_placement_outcome_carries_snapshot(self, mini_server):
        cluster = Cluster(n_nodes=3, spec=mini_server)
        requests = [
            JobRequest(make_lc("svc"), 0.3, name="svc"),
            JobRequest(make_bg("batch"), name="batch"),
        ]
        tel = Telemetry.enabled()
        policy = DedicatedPlacement(verify=False, telemetry=tel)
        outcome = policy.place(cluster, requests, seed=0)
        assert outcome.telemetry is not None
        assert outcome.telemetry.phase_counts["cluster.place"] == 1

    def test_clite_placement_resolves_engine_config_telemetry(
        self, mini_server
    ):
        cluster = Cluster(n_nodes=2, spec=mini_server)
        requests = [JobRequest(make_lc("svc"), 0.3, name="svc")]
        tel = Telemetry.enabled()
        policy = CLITEPlacement(
            engine_config=CLITEConfig(
                max_iterations=8,
                post_qos_iterations=2,
                confirm_top=1,
                n_restarts=3,
                telemetry=tel,
            )
        )
        outcome = policy.place(cluster, requests, seed=0)
        assert outcome.telemetry is not None
        assert outcome.telemetry.phase_counts["cluster.place"] == 1
        assert tel.metrics.counter_value("engine.runs") >= 1.0

    def test_disabled_outcome_carries_no_snapshot(self, mini_server):
        cluster = Cluster(n_nodes=2, spec=mini_server)
        requests = [JobRequest(make_bg("batch"), name="batch")]
        outcome = DedicatedPlacement(verify=False).place(
            cluster, requests, seed=0
        )
        assert outcome.telemetry is None


# ----------------------------------------------------------------------
# Dynamic runs
# ----------------------------------------------------------------------
class TestDynamicTelemetry:
    def _mix(self):
        ramp = LoadSchedule.steps([(0, 0.1), (150, 0.3)])
        return MixSpec.of(
            lc=[("img-dnn", 0.1), ("memcached", ramp)],
            bg=["fluidanimate"],
        )

    def _config(self, telemetry=None):
        return CLITEConfig(
            seed=0,
            max_iterations=10,
            ei_min_iterations=2,
            post_qos_iterations=2,
            confirm_top=1,
            n_restarts=3,
            telemetry=telemetry,
        )

    def test_trace_counts_reinvocations(self):
        tel = Telemetry.enabled()
        trace = run_dynamic(
            self._mix(),
            total_time_s=300,
            engine_config=self._config(),
            telemetry=tel,
        )
        assert trace.telemetry is not None
        reinvocations = len(trace.reinvocations)
        assert (
            tel.metrics.counter_value("dynamic.reinvocations")
            == reinvocations
        )
        events = [
            e
            for e in tel.tracer.events()
            if e.name == "dynamic.reinvocation"
        ]
        assert len(events) == reinvocations

    def test_disabled_trace_carries_no_snapshot(self):
        trace = run_dynamic(
            self._mix(), total_time_s=250, engine_config=self._config()
        )
        assert trace.telemetry is None


# ----------------------------------------------------------------------
# Zero-interference guarantees
# ----------------------------------------------------------------------
class TestNullPathInvariants:
    def test_null_telemetry_is_never_mutated(self, mini_server):
        before = NULL_TELEMETRY.tracer.finished_count
        run_engine(mini_server)
        assert NULL_TELEMETRY.tracer.finished_count == before
        assert NULL_TELEMETRY.metrics.instruments() == []

    def test_engine_does_not_overwrite_node_context(self, mini_server):
        """A node that already records keeps its own context even when
        the engine brings a different one."""
        node_tel = Telemetry.enabled()
        engine_tel = Telemetry.enabled()
        node = make_node(mini_server, lc_loads=(0.4,), n_bg=1, seed=0)
        node.telemetry = node_tel
        config = small_engine_config(seed=0, telemetry=engine_tel)
        result = CLITEEngine(node, config).optimize()
        assert node.telemetry is node_tel
        assert node_tel.metrics.counter_value("node.observe.windows") == float(
            result.samples_taken
        )
        assert engine_tel.metrics.counter_value("node.observe.windows") == 0.0
