"""Unit tests for the noisy performance counters."""

import math

import numpy as np
import pytest

from repro.server import PerformanceCounters


class TestPerformanceCounters:
    def test_zero_noise_passthrough(self):
        counters = PerformanceCounters(relative_std=0.0, seed=1)
        assert counters.read(42.0) == 42.0

    def test_zero_value_passthrough(self):
        counters = PerformanceCounters(relative_std=0.1, seed=1)
        assert counters.read(0.0) == 0.0

    def test_infinite_value_passthrough(self):
        counters = PerformanceCounters(relative_std=0.1, seed=1)
        assert math.isinf(counters.read(float("inf")))

    def test_negative_value_rejected(self):
        counters = PerformanceCounters(seed=1)
        with pytest.raises(ValueError):
            counters.read(-1.0)

    def test_noise_keeps_readings_positive(self):
        counters = PerformanceCounters(relative_std=0.5, seed=7)
        assert all(counters.read(1.0) > 0 for _ in range(200))

    def test_noise_magnitude_tracks_relative_std(self):
        counters = PerformanceCounters(relative_std=0.05, seed=3)
        readings = np.array([counters.read(100.0) for _ in range(4000)])
        # Log-normal with sigma=0.05 -> std of log ~ 0.05.
        assert np.log(readings / 100.0).std() == pytest.approx(0.05, rel=0.15)

    def test_longer_window_reduces_noise(self):
        a = PerformanceCounters(relative_std=0.1, seed=5)
        b = PerformanceCounters(relative_std=0.1, seed=5)
        short = np.array([a.read(1.0, window_s=1.0) for _ in range(3000)])
        long = np.array([b.read(1.0, window_s=8.0) for _ in range(3000)])
        assert np.log(long).std() < np.log(short).std()

    def test_reseed_reproducible(self):
        counters = PerformanceCounters(relative_std=0.1, seed=2)
        first = [counters.read(10.0) for _ in range(5)]
        counters.reseed(2)
        second = [counters.read(10.0) for _ in range(5)]
        assert first == second

    def test_median_unbiased(self):
        counters = PerformanceCounters(relative_std=0.2, seed=11)
        readings = np.array([counters.read(50.0) for _ in range(5001)])
        assert np.median(readings) == pytest.approx(50.0, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PerformanceCounters(relative_std=-0.1)
        with pytest.raises(ValueError):
            PerformanceCounters(reference_window_s=0.0)
        counters = PerformanceCounters(seed=1)
        with pytest.raises(ValueError):
            counters.read(1.0, window_s=0.0)
