"""Unit tests for the termination condition and the CLITE engine."""

import pytest

from repro.core import CLITEConfig, CLITEEngine, EITermination

from conftest import make_node


class TestEITermination:
    def test_threshold_scales_with_jobs(self):
        term = EITermination(base_threshold=0.01, jobs_scale=1.25)
        assert term.threshold_for(1) == pytest.approx(0.01)
        assert term.threshold_for(4) == pytest.approx(0.01 * 1.25**3)

    def test_patience_required(self):
        term = EITermination(base_threshold=0.01, patience=2, min_iterations=0)
        assert not term.update(0.001, 1)
        assert term.update(0.001, 1)

    def test_reset_on_high_ei(self):
        term = EITermination(base_threshold=0.01, patience=2, min_iterations=0)
        term.update(0.001, 1)
        term.update(0.5, 1)  # resets the streak
        assert not term.update(0.001, 1)
        assert term.update(0.001, 1)

    def test_min_iterations_gate(self):
        term = EITermination(base_threshold=0.01, patience=1, min_iterations=3)
        assert not term.update(0.0, 1)
        assert not term.update(0.0, 1)
        assert not term.update(0.0, 1)
        assert term.update(0.0, 1)

    def test_reset_clears_everything(self):
        term = EITermination(base_threshold=0.01, patience=1, min_iterations=0)
        term.update(0.0, 1)
        term.reset()
        assert not term.update(1.0, 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_threshold": 0.0},
            {"jobs_scale": 0.9},
            {"patience": 0},
            {"min_iterations": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            EITermination(**kwargs)

    def test_threshold_needs_jobs(self):
        with pytest.raises(ValueError):
            EITermination().threshold_for(0)


def small_engine_config(**overrides):
    defaults = dict(
        seed=0,
        max_iterations=8,
        ei_min_iterations=2,
        post_qos_iterations=2,
        confirm_top=1,
        n_restarts=3,
    )
    defaults.update(overrides)
    return CLITEConfig(**defaults)


class TestCLITEEngine:
    def test_optimize_returns_valid_config(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01)
        result = CLITEEngine(node, small_engine_config()).optimize()
        assert result.best_config is not None
        node.space.validate(result.best_config)
        assert 0 <= result.best_score <= 1

    def test_feasible_mix_meets_qos(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.0)
        result = CLITEEngine(node, small_engine_config()).optimize()
        assert result.qos_met
        assert node.true_performance(result.best_config).all_qos_met

    def test_sample_budget_respected(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01)
        config = small_engine_config(max_samples=10)
        result = CLITEEngine(node, config).optimize()
        assert result.samples_taken <= 10
        assert node.samples_taken <= 10

    def test_deterministic_given_seeds(self, mini_server):
        results = []
        for _ in range(2):
            node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01, seed=3)
            results.append(CLITEEngine(node, small_engine_config(seed=9)).optimize())
        assert results[0].best_config == results[1].best_config
        assert results[0].best_score == results[1].best_score

    def test_infeasible_job_reported_and_search_skipped(self, mini_server):
        from repro.server import Job, Node, PerformanceCounters
        from conftest import make_bg, make_lc

        doomed = make_lc("doomed", qos_latency_ms=0.0001, max_qps=2000.0)
        node = Node(
            mini_server,
            [Job.lc(doomed, 0.9), Job.bg(make_bg())],
            counters=PerformanceCounters(relative_std=0.0, seed=0),
        )
        result = CLITEEngine(node, small_engine_config()).optimize()
        assert result.infeasible_jobs == ("doomed",)
        assert not result.converged
        # Only the bootstrap samples were taken.
        assert result.samples_taken == node.n_jobs + 1

    def test_infeasible_continues_when_disabled(self, mini_server):
        from repro.server import Job, Node, PerformanceCounters
        from conftest import make_bg, make_lc

        doomed = make_lc("doomed", qos_latency_ms=0.0001, max_qps=2000.0)
        node = Node(
            mini_server,
            [Job.lc(doomed, 0.9), Job.bg(make_bg())],
            counters=PerformanceCounters(relative_std=0.0, seed=0),
        )
        config = small_engine_config(stop_on_infeasible=False)
        result = CLITEEngine(node, config).optimize()
        assert result.samples_taken > node.n_jobs + 1

    def test_random_bootstrap_ablation(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        config = small_engine_config(informed_bootstrap=False)
        result = CLITEEngine(node, config).optimize()
        assert result.best_config is not None
        bootstrap = [r for r in result.samples if r.phase == "bootstrap"]
        assert len(bootstrap) == node.n_jobs + 1
        assert bootstrap[0].config != node.space.equal_partition() or True

    def test_trace_phases(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        result = CLITEEngine(node, small_engine_config()).optimize()
        phases = {r.phase for r in result.samples}
        assert "bootstrap" in phases
        assert "search" in phases
        assert "confirm" in phases

    def test_best_score_is_max_of_samples(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        result = CLITEEngine(node, small_engine_config()).optimize()
        # The winner comes from the confirmation pass, whose combined
        # score never exceeds the raw per-sample maximum.
        assert result.best_score <= max(r.score for r in result.samples) + 1e-12

    def test_exploit_rounds_run(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        config = small_engine_config(exploit_every=2, max_iterations=6)
        result = CLITEEngine(node, config).optimize()
        assert result.best_config is not None

    def test_no_dropout_ablation(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        config = small_engine_config(dropout_enabled=False)
        result = CLITEEngine(node, config).optimize()
        assert result.best_config is not None

    def test_no_constrained_execution_ablation(self, mini_server):
        node = make_node(mini_server, lc_loads=(0.3, 0.2), n_bg=1, noise=0.01)
        config = small_engine_config(constrained_execution=False)
        result = CLITEEngine(node, config).optimize()
        assert result.best_config is not None
