"""Type-inferencer edge cases in analysis/callgraph.py.

RPL601/603 resolve sinks and receivers through this inferencer, so the
inputs it must not fumble — string annotations, ``Optional`` and
``Union[..., None]`` unwrapping, attribute-chain receivers, re-assigned
locals — each get a direct regression test here.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import (
    FunctionScanner,
    _annotation_class,
    build_callgraph,
)
from repro.analysis.project import Project, parse_module


def make_project(tmp_path, source: str, name: str = "mod_under_test.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Project([parse_module(path)])


def annotation(text: str):
    return ast.parse(text, mode="eval").body


class TestAnnotationClass:
    def test_plain_name(self):
        assert _annotation_class(annotation("ClusterNode")) == "ClusterNode"

    def test_dotted_attribute(self):
        assert _annotation_class(annotation("state.ClusterNode")) == "ClusterNode"

    def test_optional_unwraps(self):
        assert _annotation_class(annotation("Optional[ClusterNode]")) == "ClusterNode"

    def test_string_annotation(self):
        node = ast.Constant(value="ClusterNode")
        assert _annotation_class(node) == "ClusterNode"

    def test_string_optional_annotation(self):
        """The RPL601 regression: a quoted Optional must unwrap to the
        inner class, not report 'Optional'."""
        node = ast.Constant(value="Optional[Generator]")
        assert _annotation_class(node) == "Generator"

    def test_union_with_none(self):
        assert _annotation_class(annotation("Union[Node, None]")) == "Node"

    def test_union_of_two_classes_is_unknown(self):
        assert _annotation_class(annotation("Union[Node, Cluster]")) is None

    def test_generic_container_yields_base(self):
        assert _annotation_class(annotation("List[int]")) == "List"

    def test_garbage_string_annotation(self):
        assert _annotation_class(ast.Constant(value="not (valid")) is None

    def test_none_annotation(self):
        assert _annotation_class(None) is None


class TestParamAndAttrTypes:
    def test_string_annotated_param_resolves(self, tmp_path):
        project = make_project(
            tmp_path,
            '''
            class Widget:
                pass

            def use(w: "Optional[Widget]") -> None:
                w.poke()
            ''',
        )
        graph = build_callgraph(project)
        key = "mod_under_test:use"
        assert graph.param_types[key] == {"w": "Widget"}

    def test_class_body_annotations_harvested(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class Inner:
                pass

            class Outer:
                child: Inner

                def __init__(self) -> None:
                    self.other = Inner()
            """,
        )
        graph = build_callgraph(project)
        assert graph.attr_type("Outer", "child") == "Inner"
        assert graph.attr_type("Outer", "other") == "Inner"

    def test_attr_type_walks_bases(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class Inner:
                pass

            class Base:
                child: Inner

            class Derived(Base):
                pass
            """,
        )
        graph = build_callgraph(project)
        assert graph.attr_type("Derived", "child") == "Inner"


class TestScannerValueTypes:
    def scanner_for(self, project, qualname: str):
        graph = build_callgraph(project)
        fn = project.functions[f"mod_under_test:{qualname}"]
        module = project.modules[fn.module]
        scanner = FunctionScanner(graph, fn, module)
        for stmt in fn.node.body:
            scanner.visit(stmt)
        return scanner, fn

    def test_constructor_assigned_local(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class Thing:
                def poke(self) -> None:
                    pass

            def go():
                t = Thing()
                t.poke()
            """,
        )
        scanner, _ = self.scanner_for(project, "go")
        assert scanner.local_types["t"] == "Thing"

    def test_reassigned_local_takes_last_type(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class A:
                pass

            class B:
                pass

            def go():
                x = A()
                x = B()
            """,
        )
        scanner, _ = self.scanner_for(project, "go")
        assert scanner.local_types["x"] == "B"

    def test_reassignment_to_unknown_invalidates(self, tmp_path):
        """A local rebound to something untypeable must drop its old
        type — keeping it would let RPL603 mistake an arbitrary object
        for a guarded instance (or vice versa)."""
        project = make_project(
            tmp_path,
            """
            class A:
                pass

            def opaque():
                return 3

            def go():
                x = A()
                x = opaque()
            """,
        )
        scanner, _ = self.scanner_for(project, "go")
        assert "x" not in scanner.local_types

    def test_attribute_chain_receiver(self, tmp_path):
        """``hub.registry.counter()`` resolves through two attribute
        hops — the input RPL603 needs for nested receivers."""
        project = make_project(
            tmp_path,
            """
            class Counter:
                def add(self, n: int) -> None:
                    pass

            class Registry:
                def __init__(self) -> None:
                    self.counter_obj = Counter()

            class Hub:
                def __init__(self) -> None:
                    self.registry = Registry()

            def go(hub: Hub):
                hub.registry.counter_obj.add(1)
            """,
        )
        graph = build_callgraph(project)
        assert (
            "mod_under_test:Counter.add"
            in graph.edges["mod_under_test:go"]
        )

    def test_ifexp_type(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class Real:
                pass

            def pick(flag: bool):
                r = Real() if flag else Real()
                return r
            """,
        )
        scanner, _ = self.scanner_for(project, "pick")
        assert scanner.local_types["r"] == "Real"

    def test_annotated_return_type_flows_to_local(self, tmp_path):
        project = make_project(
            tmp_path,
            """
            class Product:
                def ship(self) -> None:
                    pass

            def build() -> Product:
                return Product()

            def go():
                p = build()
                p.ship()
            """,
        )
        graph = build_callgraph(project)
        assert (
            "mod_under_test:Product.ship"
            in graph.edges["mod_under_test:go"]
        )
