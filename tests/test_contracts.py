"""Runtime partition contracts: matrix checks, every decorator, the
REPRO_CONTRACTS toggle, and the real ConfigurationSpace constructors."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.resources import Resource, ServerSpec
from repro.resources.allocation import ConfigurationSpace
from repro.resources.contracts import (
    ContractViolation,
    check_partition_matrix,
    contracts_enabled,
    partition_contract,
    placement_contract,
    policy_contract,
    proposal_contract,
    set_contracts_enabled,
)


def make_space(units=6, n_jobs=2):
    spec = ServerSpec(
        resources=(Resource("cores", units), Resource("llc_ways", units))
    )
    return ConfigurationSpace(spec, n_jobs=n_jobs)


# ----------------------------------------------------------------------
# The core matrix check
# ----------------------------------------------------------------------
class TestCheckPartitionMatrix:
    CAPS = (6, 6)

    def test_valid_matrix_passes(self):
        check_partition_matrix([[2, 3], [4, 3]], self.CAPS, "t")

    def test_valid_batch_passes(self):
        batch = np.array([[[2, 3], [4, 3]], [[1, 1], [5, 5]]])
        check_partition_matrix(batch, self.CAPS, "t")

    def test_fractional_units_rejected(self):
        with pytest.raises(ContractViolation, match="integer"):
            check_partition_matrix([[2.5, 3], [3.5, 3]], self.CAPS, "t")

    def test_whole_valued_floats_accepted(self):
        check_partition_matrix([[2.0, 3.0], [4.0, 3.0]], self.CAPS, "t")

    def test_zero_unit_rejected(self):
        with pytest.raises(ContractViolation, match="Eq. 5"):
            check_partition_matrix([[0, 3], [6, 3]], self.CAPS, "t")

    def test_bad_column_sum_rejected(self):
        with pytest.raises(ContractViolation, match="Eq. 6"):
            check_partition_matrix([[2, 3], [3, 3]], self.CAPS, "t")

    def test_bad_ndim_rejected(self):
        with pytest.raises(ContractViolation, match="2-D"):
            check_partition_matrix([1, 2, 3], self.CAPS, "t")

    def test_context_named_in_error(self):
        with pytest.raises(ContractViolation, match="Who.did_it"):
            check_partition_matrix([[0, 3], [6, 3]], self.CAPS, "Who.did_it")


# ----------------------------------------------------------------------
# Decorators on synthetic hosts (isolates the wrapper logic)
# ----------------------------------------------------------------------
class FakeSpace:
    def __init__(self, caps):
        self.spec = SimpleNamespace(
            resources=[SimpleNamespace(units=c) for c in caps]
        )

    @partition_contract
    def make(self, matrix):
        return np.asarray(matrix)


class FakeOptimizer:
    def __init__(self, caps):
        self.space = FakeSpace(caps)

    @proposal_contract
    def propose(self, matrices):
        return SimpleNamespace(
            candidates=[
                SimpleNamespace(config=np.asarray(m)) for m in matrices
            ]
        )


class TestPartitionAndProposalContracts:
    def test_partition_contract_passes_valid(self):
        out = FakeSpace((6, 6)).make([[2, 3], [4, 3]])
        assert out.shape == (2, 2)

    def test_partition_contract_rejects_invalid(self):
        with pytest.raises(ContractViolation, match="FakeSpace.make"):
            FakeSpace((6, 6)).make([[2, 3], [3, 3]])

    def test_proposal_contract_checks_every_candidate(self):
        opt = FakeOptimizer((6, 6))
        opt.propose([[[2, 3], [4, 3]]])  # valid
        with pytest.raises(ContractViolation, match="FakeOptimizer.propose"):
            opt.propose([[[2, 3], [4, 3]], [[0, 3], [6, 3]]])

    def test_proposal_contract_allows_empty(self):
        assert FakeOptimizer((6, 6)).propose([]).candidates == []


class FakePolicy:
    @policy_contract
    def partition(self, node, budget):
        return self.result


class TestPolicyContract:
    def _call(self, result, max_samples=10):
        policy = FakePolicy()
        policy.result = result
        node = SimpleNamespace(space=FakeSpace((6, 6)))
        budget = SimpleNamespace(max_samples=max_samples)
        return policy.partition(node, budget)

    def _result(self, **overrides):
        base = dict(
            best_config=np.array([[2, 3], [4, 3]]),
            best_observation=SimpleNamespace(all_qos_met=True),
            qos_met=True,
            trace=[0] * 3,
        )
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_consistent_result_passes(self):
        self._call(self._result())

    def test_invalid_best_config_rejected(self):
        with pytest.raises(ContractViolation, match="Eq. 6"):
            self._call(self._result(best_config=np.array([[2, 3], [3, 3]])))

    def test_qos_mismatch_rejected(self):
        with pytest.raises(ContractViolation, match="qos_met"):
            self._call(self._result(qos_met=False))

    def test_budget_overrun_rejected(self):
        with pytest.raises(ContractViolation, match="budget"):
            self._call(self._result(trace=[0] * 11))

    def test_none_best_config_allowed(self):
        self._call(
            self._result(best_config=None, best_observation=None, qos_met=False)
        )


class FakePlacement:
    @placement_contract
    def place(self, cluster, requests):
        return self.outcome


class TestPlacementContract:
    def _call(self, outcome, n_nodes=3):
        policy = FakePlacement()
        policy.outcome = outcome
        cluster = SimpleNamespace(nodes=[None] * n_nodes)
        return policy.place(cluster, [])

    def _outcome(self, **overrides):
        base = dict(
            placements={"a": 0, "b": 1},
            rejected=("c",),
            machines_used=2,
        )
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_consistent_outcome_passes(self):
        self._call(self._outcome())

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ContractViolation, match="nonexistent node"):
            self._call(self._outcome(placements={"a": 5}, machines_used=1))

    def test_placed_and_rejected_overlap_rejected(self):
        with pytest.raises(ContractViolation, match="both placed"):
            self._call(self._outcome(rejected=("a",)))

    def test_machine_count_mismatch_rejected(self):
        with pytest.raises(ContractViolation, match="machines_used"):
            self._call(self._outcome(machines_used=9))


# ----------------------------------------------------------------------
# Toggle
# ----------------------------------------------------------------------
class TestToggle:
    def test_disabled_contracts_skip_checks(self):
        previous = set_contracts_enabled(False)
        try:
            assert not contracts_enabled()
            FakeSpace((6, 6)).make([[9, 9], [9, 9]])  # invalid, unchecked
        finally:
            set_contracts_enabled(previous)
        assert contracts_enabled() == previous

    def test_toggle_returns_previous_value(self):
        previous = set_contracts_enabled(True)
        assert set_contracts_enabled(previous) is True


# ----------------------------------------------------------------------
# The real constructors carry live contracts
# ----------------------------------------------------------------------
class TestRealConstructors:
    def test_all_constructors_satisfy_contracts(self):
        space = make_space()
        rng = np.random.default_rng(0)
        space.equal_partition()
        space.max_allocation(0)
        space.random(rng)
        space.random_batch(4, rng)
        space.from_unit_cube([0.5] * space.n_dims)
        space.from_unit_cube_batch(rng.random((4, space.n_dims)))

    def test_contracts_are_wrapped(self):
        # functools.wraps preserves names; the wrapper is detectable.
        assert ConfigurationSpace.equal_partition.__name__ == "equal_partition"
        assert (
            ConfigurationSpace.equal_partition.__wrapped__.__name__
            == "equal_partition"
        )
