"""End-to-end ``repro-trace``: an engine run's JSONL trace renders back
into the same per-phase breakdown the in-process snapshot reports."""

from __future__ import annotations

import pytest

from conftest import make_node
from repro.core import CLITEEngine
from repro.telemetry import Telemetry, write_jsonl
from repro.telemetry.trace_cli import main
from test_core_termination_engine import small_engine_config


@pytest.fixture
def traced_run(mini_server, tmp_path):
    tel = Telemetry.enabled()
    node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, seed=3)
    result = CLITEEngine(
        node, small_engine_config(seed=3, telemetry=tel)
    ).optimize()
    path = tmp_path / "trace.jsonl"
    write_jsonl(tel, path)
    return tel, result, path


class TestSummary:
    def test_breakdown_matches_snapshot(self, traced_run, capsys):
        tel, result, path = traced_run
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        snap = result.telemetry
        for phase, count in snap.phase_counts.items():
            row = next(
                line for line in out.splitlines() if line.startswith(phase)
            )
            assert row.split()[1] == str(count)
        assert f"spans: {snap.span_count}" in out

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["summary", str(path)]) == 0
        assert "no spans" in capsys.readouterr().out


class TestTimeline:
    def test_events_render_in_node_time_order(self, tmp_path, capsys):
        tel = Telemetry.enabled()
        # deliberately emitted out of node-time order
        tel.tracer.event(
            "qos.violation", job="b", node_time_s=20.0, p95_ms=9.1
        )
        tel.tracer.event(
            "qos.violation", job="a", node_time_s=10.0, p95_ms=8.2
        )
        tel.tracer.event("monitor.trigger", trigger="load_change",
                         node_time_s=15.0)
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        assert main(["timeline", str(path)]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("t=")]
        assert "job=a" in lines[0]
        assert "trigger=load_change" in lines[1]
        assert "job=b" in lines[2]
        assert "2 QoS-violation window(s), 3 event(s)" in out

    def test_violation_free_trace(self, traced_run, capsys):
        _, result, path = traced_run
        code = main(["timeline", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        if result.qos_met and not result.telemetry.event_count:
            assert "no QoS events" in out


class TestMetrics:
    def test_counters_render(self, traced_run, capsys):
        tel, result, path = traced_run
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.samples" in out
        assert f"{float(result.samples_taken):.6g}" in out

    def test_metric_free_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        write_jsonl(Telemetry.enabled(), path)
        assert main(["metrics", str(path)]) == 0
        assert "no metrics" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-trace:" in capsys.readouterr().err

    def test_corrupt_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main(["timeline", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
