"""End-to-end ``repro-trace``: an engine run's JSONL trace renders back
into the same per-phase breakdown the in-process snapshot reports."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from conftest import make_node
from repro.core import CLITEEngine
from repro.telemetry import (
    Telemetry,
    make_server,
    prometheus_text,
    read_jsonl,
    registry_from_records,
    write_jsonl,
)
from repro.telemetry.serve import parse_series
from repro.telemetry.trace_cli import main
from test_core_termination_engine import small_engine_config


@pytest.fixture
def traced_run(mini_server, tmp_path):
    tel = Telemetry.enabled()
    node = make_node(mini_server, lc_loads=(0.4, 0.3), n_bg=1, seed=3)
    result = CLITEEngine(
        node, small_engine_config(seed=3, telemetry=tel)
    ).optimize()
    path = tmp_path / "trace.jsonl"
    write_jsonl(tel, path)
    return tel, result, path


class TestSummary:
    def test_breakdown_matches_snapshot(self, traced_run, capsys):
        tel, result, path = traced_run
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        snap = result.telemetry
        for phase, count in snap.phase_counts.items():
            row = next(
                line for line in out.splitlines() if line.startswith(phase)
            )
            assert row.split()[1] == str(count)
        assert f"spans: {snap.span_count}" in out

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["summary", str(path)]) == 0
        assert "no spans" in capsys.readouterr().out


class TestTimeline:
    def test_events_render_in_node_time_order(self, tmp_path, capsys):
        tel = Telemetry.enabled()
        # deliberately emitted out of node-time order
        tel.tracer.event(
            "qos.violation", job="b", node_time_s=20.0, p95_ms=9.1
        )
        tel.tracer.event(
            "qos.violation", job="a", node_time_s=10.0, p95_ms=8.2
        )
        tel.tracer.event("monitor.trigger", trigger="load_change",
                         node_time_s=15.0)
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        assert main(["timeline", str(path)]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("t=")]
        assert "job=a" in lines[0]
        assert "trigger=load_change" in lines[1]
        assert "job=b" in lines[2]
        assert "2 QoS-violation window(s), 3 event(s)" in out

    def test_violation_free_trace(self, traced_run, capsys):
        _, result, path = traced_run
        code = main(["timeline", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        if result.qos_met and not result.telemetry.event_count:
            assert "no QoS events" in out


class TestMetrics:
    def test_counters_render(self, traced_run, capsys):
        tel, result, path = traced_run
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.samples" in out
        assert f"{float(result.samples_taken):.6g}" in out

    def test_metric_free_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        write_jsonl(Telemetry.enabled(), path)
        assert main(["metrics", str(path)]) == 0
        assert "no metrics" in capsys.readouterr().out


def write_phase_trace(path, phases):
    """A synthetic trace: ``phases`` maps span name -> durations (s)."""
    t = 0.0
    with open(path, "w", encoding="utf-8") as handle:
        for name, durations in phases.items():
            for duration in durations:
                handle.write(
                    json.dumps(
                        {
                            "type": "span",
                            "name": name,
                            "span_id": 0,
                            "parent_id": None,
                            "start_s": t,
                            "end_s": t + duration,
                            "duration_s": duration,
                            "attributes": {},
                        }
                    )
                    + "\n"
                )
                t += duration


class TestDiff:
    def test_identical_traces_pass(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        phases = {"engine.sample": [0.5, 0.5], "engine.fit": [0.2]}
        write_phase_trace(before, phases)
        write_phase_trace(after, phases)
        assert main(["diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "no regression" in out
        assert "REGRESSION" not in out

    def test_slower_phase_fails_and_is_named(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        write_phase_trace(before, {"engine.sample": [1.0], "engine.fit": [0.2]})
        write_phase_trace(after, {"engine.sample": [1.5], "engine.fit": [0.2]})
        assert main(["diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: 1 phase(s)" in out
        assert "engine.sample" in out
        assert "+50.0%" in out

    def test_threshold_is_configurable(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        write_phase_trace(before, {"engine.sample": [1.0]})
        write_phase_trace(after, {"engine.sample": [1.5]})
        assert (
            main(["diff", str(before), str(after), "--threshold", "0.6"]) == 0
        )
        assert "no regression (threshold 60%)" in capsys.readouterr().out

    def test_new_phase_counts_as_regression(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        write_phase_trace(before, {"engine.sample": [1.0]})
        write_phase_trace(after, {"engine.sample": [1.0], "extra": [0.3]})
        assert main(["diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert "new" in out and "extra" in out

    def test_vanished_phase_is_not_a_regression(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        write_phase_trace(before, {"engine.sample": [1.0], "gone.phase": [0.3]})
        write_phase_trace(after, {"engine.sample": [1.0]})
        assert main(["diff", str(before), str(after)]) == 0
        assert "gone" in capsys.readouterr().out

    def test_missing_before_exits_two(self, tmp_path, capsys):
        after = tmp_path / "after.jsonl"
        write_phase_trace(after, {"engine.sample": [1.0]})
        assert main(["diff", str(tmp_path / "nope.jsonl"), str(after)]) == 2
        assert "repro-trace:" in capsys.readouterr().err


class TestServeRegistry:
    def test_parse_series_round_trip(self):
        assert parse_series("engine.samples") == ("engine.samples", {})
        assert parse_series('node.p95{job="lc0",node="3"}') == (
            "node.p95",
            {"job": "lc0", "node": "3"},
        )

    def test_registry_from_records_round_trip(self, tmp_path):
        tel = Telemetry.enabled()
        tel.metrics.counter("engine.samples").add(7)
        tel.metrics.gauge("node.load", job="lc0").set(0.4)
        for value in (0.01, 0.02, 0.03):
            tel.metrics.histogram("engine.sample.seconds").observe(value)
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        registry = registry_from_records(read_jsonl(path))
        assert registry.counter_value("engine.samples") == 7.0
        text = prometheus_text(registry)
        assert "engine_samples 7.0" in text
        assert 'node_load{job="lc0"} 0.4' in text
        # Histogram snapshots re-export as summary gauges.
        assert "engine_sample_seconds_count 3.0" in text
        assert "engine_sample_seconds_sum 0.06" in text
        assert "engine_sample_seconds_p95" in text

    def test_empty_histogram_skips_nan_quantiles(self, tmp_path):
        tel = Telemetry.enabled()
        tel.metrics.histogram("engine.idle.seconds")  # never observed
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        text = prometheus_text(registry_from_records(read_jsonl(path)))
        assert "engine_idle_seconds_count 0.0" in text
        assert "p50" not in text and "nan" not in text


class TestServeEndpoint:
    def test_scrape_over_a_real_socket(self):
        tel = Telemetry.enabled()
        tel.metrics.counter("engine.samples").add(42)
        server = make_server(tel.metrics)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
            assert "# TYPE engine_samples counter" in body
            assert "engine_samples 42.0" in body
            # A scrape sees *live* values, not a bind-time snapshot.
            tel.metrics.counter("engine.samples").add(1)
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert "engine_samples 43.0" in response.read().decode("utf-8")
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()

    def test_unknown_path_is_404(self):
        server = make_server(Telemetry.enabled().metrics)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()

    def test_cli_serves_a_trace_for_n_requests(self, tmp_path, capsys):
        tel = Telemetry.enabled()
        tel.metrics.counter("engine.samples").add(5)
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        exit_codes = []
        runner = threading.Thread(
            target=lambda: exit_codes.append(
                main(
                    ["serve", str(path), "--port", str(port), "--requests", "1"]
                )
            ),
            daemon=True,
        )
        runner.start()
        body = None
        for _ in range(50):
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5
                ) as response:
                    body = response.read().decode("utf-8")
                break
            except OSError:
                runner.join(timeout=0.1)
        runner.join(timeout=5)
        assert body is not None and "engine_samples 5.0" in body
        assert exit_codes == [0]


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-trace:" in capsys.readouterr().err

    def test_corrupt_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main(["timeline", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
