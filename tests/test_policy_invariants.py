"""Invariants every policy must uphold, checked uniformly.

Parametrized across the whole Sec. 5 lineup plus the DSE baselines:
whatever a policy does internally, its outputs must be valid partitions,
within budget, honestly labelled, and reproducible under a fixed seed.
"""

import pytest

from repro.schedulers import (
    CLITEPolicy,
    FFDPolicy,
    GeneticPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    RSMPolicy,
    RandomPlusPolicy,
)
from repro.server import NodeBudget

from conftest import make_node

BUDGET = NodeBudget(50)

POLICY_FACTORIES = {
    "CLITE": lambda seed: CLITEPolicy(seed=seed),
    "PARTIES": lambda seed: PartiesPolicy(),
    "Heracles": lambda seed: HeraclesPolicy(),
    "RAND+": lambda seed: RandomPlusPolicy(preset_samples=30, seed=seed),
    "GENETIC": lambda seed: GeneticPolicy(preset_samples=30, seed=seed),
    "ORACLE": lambda seed: OraclePolicy(max_enumeration=3000),
    "FFD": lambda seed: FFDPolicy(seed=seed),
    "RSM": lambda seed: RSMPolicy(seed=seed),
}


@pytest.fixture(scope="module")
def results(mini_server_module):
    server = mini_server_module
    out = {}
    for name, factory in POLICY_FACTORIES.items():
        node = make_node(server, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01, seed=3)
        out[name] = (node, factory(3).partition(node, BUDGET))
    return out


@pytest.fixture(scope="module")
def mini_server_module():
    from repro.resources import CORES, LLC_WAYS, MEMORY_BANDWIDTH, Resource, ServerSpec

    return ServerSpec(
        resources=(
            Resource(CORES, 6),
            Resource(LLC_WAYS, 6),
            Resource(MEMORY_BANDWIDTH, 6),
        )
    )


@pytest.mark.parametrize("name", list(POLICY_FACTORIES))
class TestPolicyInvariants:
    def test_best_config_is_valid(self, results, name):
        node, result = results[name]
        assert result.best_config is not None
        node.space.validate(result.best_config)

    def test_every_trace_config_is_valid(self, results, name):
        node, result = results[name]
        for entry in result.trace:
            node.space.validate(entry.config)

    def test_budget_respected(self, results, name):
        _, result = results[name]
        assert result.samples_taken <= BUDGET.max_samples

    def test_scores_in_unit_interval(self, results, name):
        _, result = results[name]
        assert 0.0 <= result.best_score <= 1.0
        for entry in result.trace:
            assert 0.0 <= entry.score <= 1.0

    def test_qos_flag_matches_best_observation(self, results, name):
        _, result = results[name]
        if result.best_observation is not None:
            assert result.qos_met == result.best_observation.all_qos_met

    def test_trace_indices_sequential(self, results, name):
        _, result = results[name]
        assert [e.index for e in result.trace] == list(range(len(result.trace)))

    def test_policy_name_stamped(self, results, name):
        _, result = results[name]
        assert result.policy == POLICY_FACTORIES[name](0).name


@pytest.mark.parametrize(
    "name", [n for n in POLICY_FACTORIES if n not in ("PARTIES", "Heracles")]
)
def test_seeded_policies_are_reproducible(mini_server_module, name):
    """Same seed, same node noise -> identical chosen partition."""
    outcomes = []
    for _ in range(2):
        node = make_node(
            mini_server_module, lc_loads=(0.4, 0.3), n_bg=1, noise=0.01, seed=7
        )
        result = POLICY_FACTORIES[name](7).partition(node, BUDGET)
        outcomes.append(result.best_config)
    assert outcomes[0] == outcomes[1]
